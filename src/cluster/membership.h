// MembershipTracker: the failure-detection half of the cluster runtime.
//
// Every node heartbeats every peer it knows an address for; the tracker
// turns "when did I last hear from X" into one of four states:
//
//      (silence > suspect timeout)      (silence > down timeout)
//   kAlive ----------------------> kSuspect ----------------------> kDown
//      ^                               |                              |
//      +------- heartbeat -------------+------- heartbeat ------------+
//
// kUnknown is the before-first-contact state — a node that never spoke
// is not "down" (it may still be launching), which is why the coordinator
// can wait for the initial quorum without tripping failure alarms.
//
// The tracker is deliberately clock-free: callers feed timestamps into
// Observe()/SweepAt(), so tests drive transitions with a fake clock and
// the node drives them from its timer thread.  Thread-safe.

#ifndef HYPERION_CLUSTER_MEMBERSHIP_H_
#define HYPERION_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/synchronization.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperion {
namespace cluster {

enum class MemberState {
  kUnknown,  // never heard from
  kAlive,
  kSuspect,  // silent past the suspect timeout
  kDown,     // silent past the down timeout
};

const char* MemberStateName(MemberState state);

struct MemberInfo {
  std::string node;
  MemberState state = MemberState::kUnknown;
  int64_t last_heard_us = 0;  // 0 when never heard
  uint64_t beats = 0;         // heartbeats observed
};

/// \brief Tracks liveness of the cluster roster from observation
/// timestamps.  The roster starts from the config and changes only via
/// AddMember/RemoveMember (rebalance transitions).  Records `cluster.*`
/// transition metrics and trace events on behalf of the owning node.
class MembershipTracker {
 public:
  /// \brief `members` is the full expected roster (this node excluded);
  /// `self` names the observer in trace events.  Timeouts are µs.
  MembershipTracker(std::string self, std::vector<std::string> members,
                    int64_t suspect_after_us, int64_t down_after_us);

  /// \brief A heartbeat (or any authenticated traffic) arrived from
  /// `node` at `now_us`.  Senders off the roster are ignored.  A
  /// suspect/down member heard from again returns to kAlive (with a
  /// recovery trace event).
  void Observe(const std::string& node, int64_t now_us);

  /// \brief Applies the timeouts as of `now_us`, demoting silent
  /// members.  Returns the members whose state changed in this sweep.
  std::vector<MemberInfo> SweepAt(int64_t now_us);

  MemberState StateOf(const std::string& node) const;

  /// \brief Roster snapshot, sorted by node id.
  std::vector<MemberInfo> Snapshot() const;

  /// \brief True when every member of the roster is currently kAlive.
  bool AllAlive() const;

  /// \brief Grows the roster with `node` in kUnknown (rebalance join).
  /// No-op when the node is already tracked — a rejoin keeps its state.
  void AddMember(const std::string& node);

  /// \brief Drops `node` from the roster (rebalance decommission).  Its
  /// silence stops counting toward failure detection immediately.
  void RemoveMember(const std::string& node);

  /// \brief Whether `node` is on the roster (any state).
  bool Contains(const std::string& node) const;

 private:
  struct Entry {
    MemberState state = MemberState::kUnknown;
    int64_t last_heard_us = 0;
    uint64_t beats = 0;
  };

  // Appends the transition's trace event to `out` instead of recording
  // it directly, so the tracer's lock is only taken with mu_ released
  // (mu_ is a leaf, DESIGN.md §12).
  void TransitionLocked(const std::string& node, Entry& entry,
                        MemberState next, int64_t now_us,
                        std::vector<obs::TraceEvent>* out) REQUIRES(mu_);

  const std::string self_;
  const int64_t suspect_after_us_;
  const int64_t down_after_us_;
  // Resolved once at construction; Add/Set are atomic (lock-free).
  obs::Counter* m_heartbeats_ = nullptr;
  obs::Counter* m_alive_ = nullptr;
  obs::Counter* m_suspect_ = nullptr;
  obs::Counter* m_down_ = nullptr;
  obs::Gauge* m_members_alive_ = nullptr;
  mutable Mutex mu_;
  std::map<std::string, Entry> members_ GUARDED_BY(mu_);
};

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_MEMBERSHIP_H_
