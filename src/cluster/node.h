// ClusterNode: one process of a hyperion cluster.
//
// A node is a TcpNetwork with exactly one registered peer (the node id)
// plus the role-specific machinery on top:
//
//  * storage — slices its TableStore by the shard ring at startup,
//    answers ShardFetchMsg with the owned slices (shard_split.h),
//    applies replicated write slices through a per-shard monotonic
//    write log (write_path.h) and runs the anti-entropy repair loop
//    that pulls the writes it missed while dead;
//  * coordinator — owns a ClusterTableSource that fans fetches out to
//    the storage nodes and reassembles tables for the query service,
//    plus a ClusterTableSink that replicates curator writes to every
//    replica under the configured write quorum.
//
// Both roles run the membership protocol: a heartbeat to every known
// peer each heartbeat_ms, carrying this node's own listen address so
// nodes that bound ephemeral ports become reachable once anyone hears
// them (address learning), and a periodic sweep applying the
// suspect/down timeouts (membership.h).  Storage heartbeats also
// piggyback the node's per-shard write-log versions; every receiver
// records them, which is how a restarted replica discovers it is
// stale (a peer advertises a higher version for a shard it owns) and
// what the coordinator's `versions` REPL verb reports.
//
// Lifecycle is two-phase so ephemeral ports work across processes:
//
//   Bind()   — bind the listener; ListenPort()/WritePortFile() now
//              report the real port, but nothing runs yet.
//   Start()  — load shards, connect addresses, start the event loop and
//              the heartbeat/sweep timers.
//   Stop()   — cancel timers, stop the loop.
//
// The launch script (tools/run_cluster.sh) starts every storage node
// with port 0, collects the port files, rewrites a resolved config and
// only then starts the coordinator — no listen-before-connect race.

#ifndef HYPERION_CLUSTER_NODE_H_
#define HYPERION_CLUSTER_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/membership.h"
#include "cluster/remote_tables.h"
#include "cluster/shard_ring.h"
#include "cluster/write_path.h"
#include "common/synchronization.h"
#include "p2p/tcp_network.h"
#include "storage/shard_split.h"
#include "storage/table_store.h"

namespace hyperion {
namespace cluster {

/// \brief One cluster process (storage or coordinator).  Construct via
/// Create, then Bind → Start → Stop.
class ClusterNode {
 public:
  /// \brief Validates that `self` names a node of `config`.  Storage
  /// nodes take ownership of `store` (the tables to slice and serve);
  /// the coordinator ignores it.
  static Result<std::unique_ptr<ClusterNode>> Create(ClusterConfig config,
                                                     std::string self,
                                                     TableStore store);

  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// \brief Binds the listener (config port, or ephemeral when 0).
  Status Bind();

  /// \brief The bound listen port; requires Bind().
  Result<uint16_t> ListenPort() const;

  /// \brief Writes "<port>\n" to `path` atomically (write + rename), the
  /// handshake file launch scripts poll for.  Requires Bind().
  Status WritePortFile(const std::string& path) const;

  /// \brief Slices the store (storage role), connects every peer whose
  /// address is known, and starts the event loop and timers.
  Status Start();

  /// \brief Cancels timers and stops the event loop.  Idempotent.
  void Stop();

  /// \brief Overrides a peer's address (launch scripts with resolved
  /// ports call this; heartbeats learn addresses the same way later).
  void SetPeerAddress(const std::string& node, const std::string& host_port);

  const ClusterConfig& config() const { return config_; }
  const NodeSpec& self() const { return self_spec_; }
  const ShardRing& ring() const { return ring_; }
  MembershipTracker& membership() { return membership_; }

  /// \brief Coordinator only: the table source query services read
  /// through (nullptr on storage nodes).
  ClusterTableSource* table_source() { return table_source_.get(); }

  /// \brief Coordinator only: the write fan-out curator updates go
  /// through (nullptr on storage nodes).
  ClusterTableSink* table_sink() { return table_sink_.get(); }

  /// \brief Storage only: persist applied write slices under `dir` (one
  /// log file per shard) and replay whatever a previous incarnation left
  /// there at Start().  Call between Create and Start.
  void SetWriteLogDir(std::string dir);

  /// \brief This node's own per-shard write-log versions (storage role;
  /// empty elsewhere).
  const ShardWriteLog& write_log() const { return write_log_; }

  /// \brief Latest per-shard write-log versions each peer's heartbeats
  /// advertised: node → (shard → version).  The coordinator REPL's
  /// `versions` verb prints this — it is how the drill detects repair
  /// convergence.
  std::map<std::string, std::map<uint64_t, uint64_t>> PeerShardVersions()
      const;

  /// \brief Storage only: every shard this node replicates (primary or
  /// backup) — exactly the slices it loads and serves.
  std::vector<uint64_t> owned_shards() const;

  /// \brief Blocks until every roster member is alive or `timeout_us`
  /// elapses; returns the final AllAlive().
  bool WaitAllAlive(int64_t timeout_us);

  /// \brief The network, for wiring a QueryService onto the coordinator.
  TcpNetwork& network() { return *net_; }

 private:
  ClusterNode(ClusterConfig config, NodeSpec self_spec, TableStore store,
              ShardRing ring);

  void HandleMessage(const Message& msg);
  void HandleHeartbeat(const Message& msg);
  void HandleShardFetch(const Message& msg);   // storage role
  void HandleWriteSlice(const Message& msg);   // storage role
  void HandleRepairFetch(const Message& msg);  // storage role
  // Offers one slice to the write log + served-slice map; loop thread
  // only (or driver thread pre-loop, during Start()'s replay).
  Result<ApplyOutcome> ApplyWriteSlice(const WriteSliceMsg& slice);
  // Installs a (logged) slice into the served-slice map; same threading
  // rule as ApplyWriteSlice.
  void InstallSlice(const WriteSliceMsg& slice);
  // One anti-entropy pass: for every owned shard a peer is ahead on,
  // pull the next missing log entry (bounded to one in-flight fetch per
  // shard).  `chain_shard` != -1 restricts the pass to that shard — the
  // fast path a just-applied repair entry takes to fetch its successor.
  void MaybeRepair(int64_t chain_shard);
  void SendHeartbeats();
  void ScheduleHeartbeat();
  void ScheduleSweep();
  void ScheduleRepair();  // storage role
  int64_t NowUs() const;

  const ClusterConfig config_;
  const NodeSpec self_spec_;
  TableStore store_;
  const ShardRing ring_;
  MembershipTracker membership_;
  std::unique_ptr<TcpNetwork> net_;
  std::unique_ptr<ClusterTableSource> table_source_;  // coordinator only
  std::unique_ptr<ClusterTableSink> table_sink_;      // coordinator only
  const uint64_t incarnation_;
  // Storage role.  write_log_ is internally synchronized (its mutex is
  // a leaf, like mu_ — never take one while holding the other);
  // write_log_dir_ is set pre-Start from the driver thread only.
  ShardWriteLog write_log_;
  std::string write_log_dir_;

  mutable Mutex mu_;
  bool bound_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  uint64_t beat_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::string> known_addrs_ GUARDED_BY(mu_);
  Network::TimerId heartbeat_timer_ GUARDED_BY(mu_) = 0;
  Network::TimerId sweep_timer_ GUARDED_BY(mu_) = 0;
  Network::TimerId repair_timer_ GUARDED_BY(mu_) = 0;
  // node → (shard → write-log version), learned from heartbeats.
  std::map<std::string, std::map<uint64_t, uint64_t>> peer_shard_versions_
      GUARDED_BY(mu_);
  // One outstanding repair fetch per shard.  The request id is what a
  // reply must echo to count: a delayed reply from a timed-out earlier
  // fetch must not clear the slot a newer fetch holds.
  struct RepairFetch {
    uint64_t request_id = 0;
    int64_t sent_us = 0;  // NowUs() at send, for the in-flight timeout
  };
  uint64_t next_repair_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, RepairFetch> repair_inflight_ GUARDED_BY(mu_);
  // Owned shard slices.  Filled by Start() (driver thread, before the
  // event loop runs) and thereafter mutated only by the write/repair
  // handlers on the loop thread — the same thread that reads it to
  // answer fetches, so no lock is needed.
  std::map<std::pair<std::string, uint64_t>, ShardSlice> slices_;
};

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_NODE_H_
