// ClusterNode: one process of a hyperion cluster.
//
// A node is a TcpNetwork with exactly one registered peer (the node id)
// plus the role-specific machinery on top:
//
//  * storage — slices its TableStore by the shard ring at startup,
//    answers ShardFetchMsg with the owned slices (shard_split.h),
//    applies replicated write slices through a per-shard monotonic
//    write log (write_path.h), runs the anti-entropy repair loop that
//    pulls the writes it missed while dead, and pulls handoff snapshots
//    of the shards it gains during a rebalance transition;
//  * coordinator — owns a ClusterTableSource that fans fetches out to
//    the storage nodes and reassembles tables for the query service,
//    plus a ClusterTableSink that replicates curator writes to every
//    replica under the configured write quorum.  It is also the ring
//    epoch authority: `join`/`decommission` (or the auto-decommission
//    deadline) start an epoch transition, and the coordinator commits
//    the new epoch only once every gained shard's handoff has acked
//    and caught up to the committed write sequence.
//
// Both roles run the membership protocol: a heartbeat to every roster
// peer each heartbeat_ms, carrying this node's own listen address so
// nodes that bound ephemeral ports become reachable once anyone hears
// them (address learning), and a periodic sweep applying the
// suspect/down timeouts (membership.h).  Storage heartbeats also
// piggyback the node's per-shard write-log versions; every receiver
// records them, which is how a restarted replica discovers it is
// stale (a peer advertises a higher version for a shard it owns) and
// what the coordinator's `versions` REPL verb reports.  Heartbeats
// additionally announce the sender's committed (and, mid-transition,
// pending) ring epoch and storage roster; every node adopts a strictly
// higher committed epoch from ANY peer — symmetric adoption, so a
// restarted coordinator relearns the live epoch from its own fleet
// within one beat instead of resurrecting the config-time ring.
//
// Lifecycle is two-phase so ephemeral ports work across processes:
//
//   Bind()   — bind the listener; ListenPort()/WritePortFile() now
//              report the real port, but nothing runs yet.
//   Start()  — load shards, connect addresses, start the event loop and
//              the heartbeat/sweep timers.
//   Stop()   — cancel timers, stop the loop.
//
// The launch script (tools/run_cluster.sh) starts every storage node
// with port 0, collects the port files, rewrites a resolved config and
// only then starts the coordinator — no listen-before-connect race.

#ifndef HYPERION_CLUSTER_NODE_H_
#define HYPERION_CLUSTER_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/membership.h"
#include "cluster/placement.h"
#include "cluster/remote_tables.h"
#include "cluster/shard_ring.h"
#include "cluster/write_path.h"
#include "common/synchronization.h"
#include "p2p/tcp_network.h"
#include "storage/shard_split.h"
#include "storage/table_store.h"

namespace hyperion {
namespace cluster {

/// \brief One cluster process (storage or coordinator).  Construct via
/// Create, then Bind → Start → Stop.
class ClusterNode {
 public:
  /// \brief Validates that `self` names a node of `config`.  Storage
  /// nodes take ownership of `store` (the tables to slice and serve);
  /// the coordinator ignores it.
  static Result<std::unique_ptr<ClusterNode>> Create(ClusterConfig config,
                                                     std::string self,
                                                     TableStore store);

  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// \brief Binds the listener (config port, or ephemeral when 0).
  Status Bind();

  /// \brief The bound listen port; requires Bind().
  Result<uint16_t> ListenPort() const;

  /// \brief Writes "<port>\n" to `path` atomically (write + rename), the
  /// handshake file launch scripts poll for.  Requires Bind().
  Status WritePortFile(const std::string& path) const;

  /// \brief Slices the store (storage role), connects every peer whose
  /// address is known, and starts the event loop and timers.
  Status Start();

  /// \brief Cancels timers and stops the event loop.  Idempotent.
  void Stop();

  /// \brief Overrides a peer's address (launch scripts with resolved
  /// ports call this; heartbeats learn addresses the same way later).
  void SetPeerAddress(const std::string& node, const std::string& host_port);

  const ClusterConfig& config() const { return config_; }
  const NodeSpec& self() const { return self_spec_; }

  /// \brief The committed shard ring.  A snapshot: rebalance commits
  /// swap the placement under running code, so callers hold the ring
  /// they resolved against even while the epoch moves on.
  std::shared_ptr<const ShardRing> ring() const {
    return placement_.Committed().ring;
  }

  /// \brief The committed ring epoch (coordinator mints 1 at startup;
  /// storage nodes start at 0 and adopt from heartbeats).
  uint64_t ring_epoch() const { return placement_.epoch(); }

  /// \brief The in-flight transition's target epoch (0 = none).
  uint64_t pending_epoch() const { return placement_.pending_epoch(); }

  MembershipTracker& membership() { return membership_; }

  /// \brief Coordinator only: starts an epoch transition that adds
  /// storage node `id` (listening at `host_port`) to the ring.  Returns
  /// the pending epoch; the commit happens asynchronously once every
  /// gained shard's handoff acked.  Fails while another transition is
  /// in flight or `id` is already on the roster.
  Result<uint64_t> StartJoin(const std::string& id,
                             const std::string& host_port);

  /// \brief Coordinator only: starts an epoch transition that removes
  /// storage node `id` from the ring.  Refuses when another transition
  /// is in flight, when `id` is the last storage node, or when some
  /// shard would have no alive handoff source left.
  Result<uint64_t> StartDecommission(const std::string& id);

  /// \brief Coordinator only: the table source query services read
  /// through (nullptr on storage nodes).
  ClusterTableSource* table_source() { return table_source_.get(); }

  /// \brief Coordinator only: the write fan-out curator updates go
  /// through (nullptr on storage nodes).
  ClusterTableSink* table_sink() { return table_sink_.get(); }

  /// \brief Storage only: persist applied write slices under `dir` (one
  /// log file per shard) and replay whatever a previous incarnation left
  /// there at Start().  Call between Create and Start.
  void SetWriteLogDir(std::string dir);

  /// \brief This node's own per-shard write-log versions (storage role;
  /// empty elsewhere).
  const ShardWriteLog& write_log() const { return write_log_; }

  /// \brief Latest per-shard write-log versions each peer's heartbeats
  /// advertised: node → (shard → version).  The coordinator REPL's
  /// `versions` verb prints this — it is how the drill detects repair
  /// convergence.
  std::map<std::string, std::map<uint64_t, uint64_t>> PeerShardVersions()
      const;

  /// \brief Storage only: every shard this node replicates (primary or
  /// backup) under the committed ring — exactly the slices it serves.
  std::vector<uint64_t> owned_shards() const;

  /// \brief Blocks until every roster member is alive or `timeout_us`
  /// elapses; returns the final AllAlive().
  bool WaitAllAlive(int64_t timeout_us);

  /// \brief The network, for wiring a QueryService onto the coordinator.
  TcpNetwork& network() { return *net_; }

 private:
  ClusterNode(ClusterConfig config, NodeSpec self_spec, TableStore store,
              ShardRing ring);

  void HandleMessage(const Message& msg);
  void HandleHeartbeat(const Message& msg);
  void HandleShardFetch(const Message& msg);    // storage role
  void HandleWriteSlice(const Message& msg);    // storage role
  void HandleRepairFetch(const Message& msg);   // storage role
  void HandleHandoffFetch(const Message& msg);  // storage role (source)
  void HandleHandoffRows(const Message& msg);   // storage role (receiver)
  void HandleHandoffAck(const Message& msg);    // coordinator role
  // Offers one slice to the write log + served-slice map; loop thread
  // only (or driver thread pre-loop, during Start()'s replay).
  Result<ApplyOutcome> ApplyWriteSlice(const WriteSliceMsg& slice);
  // Installs a (logged) slice into the served-slice map; same threading
  // rule as ApplyWriteSlice.
  void InstallSlice(const WriteSliceMsg& slice);
  // One anti-entropy pass: for every owned shard a peer is ahead on,
  // pull the next missing log entry (bounded to one in-flight fetch per
  // shard).  `chain_shard` != -1 restricts the pass to that shard — the
  // fast path a just-applied repair entry takes to fetch its successor.
  // "Owned" is the union of committed and pending ownership, so a new
  // owner keeps converging on writes that landed after its handoff;
  // shards with a handoff still in flight are skipped (the handoff
  // snapshot supersedes entry-by-entry replay).
  void MaybeRepair(int64_t chain_shard);
  // One handoff pass (storage role): for every shard gained in the
  // pending ring without a handoff in flight, pull the full shard
  // snapshot from an alive committed owner (bounded to one in-flight
  // pull per shard; timed-out pulls re-arm like repair fetches do).
  void MaybeHandoff();
  // Adopts a strictly higher committed epoch and/or a pending
  // transition announced by `hb`, rebuilding the ring from the
  // announced roster.  Loop thread.
  void AdoptFromHeartbeat(const HeartbeatMsg& hb);
  // Recomputes the heartbeat/membership roster from the committed and
  // pending rings plus the config coordinators; call after any
  // placement change.  `drop_unowned` additionally drops served slices
  // of shards this node no longer replicates (storage, loop thread).
  void SyncRosterToPlacement(bool drop_unowned);
  // Coordinator: commits the pending epoch once every gained
  // (shard, node) pair acked its handoff and advertised a write-log
  // version at or past the committed write sequence.
  void MaybeCommitEpoch();
  // Coordinator sweep hook: starts a decommission transition for a
  // storage member silent past down_ms + decommission_after_ms.
  void MaybeAutoDecommission(const std::vector<MemberInfo>& members);
  // Shared tail of StartJoin/StartDecommission: diffs committed →
  // `next`, installs the pending epoch and the transition ledger.
  Result<uint64_t> BeginTransition(ShardRing next, const std::string& verb,
                                   const std::string& subject);
  void SendHeartbeats();
  void ScheduleHeartbeat();
  void ScheduleSweep();
  void ScheduleRepair();  // storage role
  int64_t NowUs() const;

  const ClusterConfig config_;
  const NodeSpec self_spec_;
  TableStore store_;
  // The live placement (committed + pending rings with their epochs).
  // Internally synchronized; its mutex is a leaf like mu_ — never take
  // one while holding the other.
  PlacementState placement_;
  MembershipTracker membership_;
  std::unique_ptr<TcpNetwork> net_;
  std::unique_ptr<ClusterTableSource> table_source_;  // coordinator only
  std::unique_ptr<ClusterTableSink> table_sink_;      // coordinator only
  const uint64_t incarnation_;
  // Storage role.  write_log_ is internally synchronized (its mutex is
  // a leaf, like mu_ — never take one while holding the other);
  // write_log_dir_ is set pre-Start from the driver thread only.
  ShardWriteLog write_log_;
  std::string write_log_dir_;

  mutable Mutex mu_;
  bool bound_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  uint64_t beat_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::string> known_addrs_ GUARDED_BY(mu_);
  // Peers this node heartbeats and accepts heartbeats from.  Starts as
  // the config roster; rebalance transitions add pending members at
  // announcement time and drop decommissioned ones at commit.
  std::set<std::string> roster_ GUARDED_BY(mu_);
  Network::TimerId heartbeat_timer_ GUARDED_BY(mu_) = 0;
  Network::TimerId sweep_timer_ GUARDED_BY(mu_) = 0;
  Network::TimerId repair_timer_ GUARDED_BY(mu_) = 0;
  // node → (shard → write-log version), learned from heartbeats.
  std::map<std::string, std::map<uint64_t, uint64_t>> peer_shard_versions_
      GUARDED_BY(mu_);
  // One outstanding repair (or handoff) fetch per shard.  The request
  // id is what a reply must echo to count: a delayed reply from a
  // timed-out earlier fetch must not clear the slot a newer fetch holds.
  struct RepairFetch {
    uint64_t request_id = 0;
    int64_t sent_us = 0;  // NowUs() at send, for the in-flight timeout
  };
  uint64_t next_repair_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, RepairFetch> repair_inflight_ GUARDED_BY(mu_);
  std::map<uint64_t, RepairFetch> handoff_inflight_ GUARDED_BY(mu_);
  // Coordinator: the in-flight epoch transition's ledger — every
  // (shard, gained node) pair still owed a handoff ack, the write-log
  // version each ack reported (the commit gate compares it, or the
  // newer heartbeat-advertised one, against the committed write
  // sequence), and the start time for the convergence histogram.
  struct Transition {
    uint64_t epoch = 0;
    std::set<std::pair<uint64_t, std::string>> waiting;
    std::map<std::pair<uint64_t, std::string>, uint64_t> acked;
    int64_t started_us = 0;
    size_t moves = 0;
  };
  std::unique_ptr<Transition> transition_ GUARDED_BY(mu_);
  // Owned shard slices.  Filled by Start() (driver thread, before the
  // event loop runs) and thereafter mutated only by the write/repair/
  // handoff/adoption handlers on the loop thread — the same thread that
  // reads it to answer fetches, so no lock is needed.
  std::map<std::pair<std::string, uint64_t>, ShardSlice> slices_;
};

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_NODE_H_
