#include "cluster/shutdown.h"

#include <csignal>

namespace hyperion {
namespace cluster {

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnShutdownSignal(int /*signo*/) { g_shutdown_requested = 1; }

}  // namespace

void InstallShutdownSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a signal must interrupt the REPL's blocking stdin
  // read so the loop notices the flag promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() { return g_shutdown_requested != 0; }

void ResetShutdownRequested() { g_shutdown_requested = 0; }

}  // namespace cluster
}  // namespace hyperion
