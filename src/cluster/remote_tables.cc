#include "cluster/remote_tables.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/shard_split.h"

namespace hyperion {
namespace cluster {

namespace {

ShardSlice SliceOfMsg(const ShardRowsMsg& msg) {
  ShardSlice slice;
  slice.table_name = msg.table_name;
  slice.shard = msg.shard;
  slice.version = msg.version;
  slice.total_rows = msg.total_rows;
  slice.x_schema = msg.x_schema;
  slice.y_schema = msg.y_schema;
  slice.row_indices = msg.row_indices;
  slice.rows = msg.rows;
  return slice;
}

}  // namespace

ClusterTableSource::ClusterTableSource(std::string self, Network* net,
                                       const ShardRing* ring, Options options)
    : self_(std::move(self)), net_(net), ring_(ring), options_(options) {}

Result<VersionedTable> ClusterTableSource::Fetch(
    const std::string& name) const {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  {
    MutexLock lock(mu_);
    auto it = cache_.find(name);
    if (it != cache_.end()) {
      reg.GetCounter("cluster.table_cache_hits")->Add();
      return it->second;
    }
  }
  reg.GetCounter("cluster.table_cache_misses")->Add();
  const auto start = std::chrono::steady_clock::now();

  const uint64_t shard_count = ring_->shard_count();
  std::vector<std::shared_ptr<Pending>> slots;
  std::vector<uint64_t> ids;
  slots.reserve(shard_count);
  ids.reserve(shard_count);
  {
    MutexLock lock(mu_);
    for (uint64_t s = 0; s < shard_count; ++s) {
      uint64_t id = next_request_id_++;
      auto slot = std::make_shared<Pending>();
      pending_.emplace(id, slot);
      slots.push_back(std::move(slot));
      ids.push_back(id);
    }
  }
  // Sends happen without mu_ held: the network has its own (leaf) lock.
  for (uint64_t s = 0; s < shard_count; ++s) {
    reg.GetCounter("cluster.shard_fetches")->Add();
    Message msg;
    msg.from = self_;
    msg.to = ring_->OwnerForShard(s);
    ShardFetchMsg fetch;
    fetch.request_id = ids[s];
    fetch.table_name = name;
    fetch.shard = s;
    msg.payload = std::move(fetch);
    // Send only fails on local misconfiguration; transport loss shows up
    // as a missing response, handled by the wait below.
    (void)net_->Send(std::move(msg));
  }

  bool all_done;
  {
    MutexLock lock(mu_);
    all_done = cv_.WaitFor(
        mu_, std::chrono::microseconds(options_.fetch_timeout_us),
        [&slots]() {
          for (const auto& slot : slots) {
            if (!slot->done) return false;
          }
          return true;
        });
    for (uint64_t id : ids) pending_.erase(id);
  }

  if (!all_done) {
    for (uint64_t s = 0; s < shard_count; ++s) {
      if (slots[s]->done) continue;
      const std::string& owner = ring_->OwnerForShard(s);
      reg.GetCounter("cluster.shard_fetch_failures")->Add();
      obs::TraceEvent ev;
      ev.peer = self_;
      ev.kind = "cluster.shard_unreachable";
      ev.detail = owner;
      ev.value = static_cast<int64_t>(s);
      obs::SessionTracer::Default().Record(std::move(ev));
      return Status::Unavailable(
          "storage node '" + owner + "' unreachable: no response for shard " +
          std::to_string(s) + " of table '" + name + "' within " +
          std::to_string(options_.fetch_timeout_us / 1000) + "ms");
    }
  }

  std::vector<ShardSlice> owned;
  owned.reserve(shard_count);
  for (uint64_t s = 0; s < shard_count; ++s) {
    const ShardRowsMsg& response = slots[s]->response;
    if (!response.error.empty()) {
      reg.GetCounter("cluster.shard_fetch_failures")->Add();
      StatusCode code = response.error_code == 0
                            ? StatusCode::kInternal
                            : static_cast<StatusCode>(response.error_code);
      return Status(code, "storage node '" + response.node +
                              "' failed shard " + std::to_string(s) +
                              " of table '" + name + "': " + response.error);
    }
    reg.GetCounter("cluster.shard_rows_fetched")
        ->Add(response.rows.size());
    owned.push_back(SliceOfMsg(response));
  }
  std::vector<const ShardSlice*> views;
  views.reserve(owned.size());
  for (const ShardSlice& s : owned) views.push_back(&s);
  HYP_ASSIGN_OR_RETURN(MappingTable table, AssembleTable(name, views));

  VersionedTable vt;
  vt.version = owned.empty() ? 0 : owned.front().version;
  vt.table = std::make_shared<const MappingTable>(std::move(table));

  int64_t elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  reg.GetHistogram("cluster.shard_fetch_latency_us", obs::LatencyBoundsUs())
      ->Observe(elapsed_us);
  obs::TraceEvent ev;
  ev.peer = self_;
  ev.kind = "cluster.table_fetched";
  ev.detail = name;
  ev.value = static_cast<int64_t>(vt.table->size());
  obs::SessionTracer::Default().Record(std::move(ev));

  MutexLock lock(mu_);
  for (uint64_t s = 0; s < shard_count; ++s) {
    stats_.push_back(ShardStat{name, s, slots[s]->response.node,
                               slots[s]->response.rows.size()});
  }
  // A concurrent Fetch of the same table may have beaten us here; both
  // assembled from the same slices, so either copy serves.
  return cache_.emplace(name, std::move(vt)).first->second;
}

void ClusterTableSource::OnShardRows(const ShardRowsMsg& msg) {
  MutexLock lock(mu_);
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) return;  // fetch already failed or finished
  it->second->response = msg;
  it->second->done = true;
  cv_.NotifyAll();
}

void ClusterTableSource::Evict() {
  MutexLock lock(mu_);
  cache_.clear();
}

std::vector<ClusterTableSource::ShardStat> ClusterTableSource::ShardStats()
    const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace cluster
}  // namespace hyperion
