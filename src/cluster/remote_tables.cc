#include "cluster/remote_tables.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/shard_split.h"

namespace hyperion {
namespace cluster {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ShardSlice SliceOfMsg(const ShardRowsMsg& msg) {
  ShardSlice slice;
  slice.table_name = msg.table_name;
  slice.shard = msg.shard;
  slice.version = msg.version;
  slice.total_rows = msg.total_rows;
  slice.x_schema = msg.x_schema;
  slice.y_schema = msg.y_schema;
  slice.row_indices = msg.row_indices;
  slice.rows = msg.rows;
  return slice;
}

// Distinct owners tried so far, in first-tried order (the attempt cycle
// walks candidates round-robin).
std::vector<std::string> TriedOwners(
    const std::vector<std::string>& candidates, size_t attempts) {
  std::vector<std::string> tried;
  for (size_t i = 0; i < attempts && i < candidates.size(); ++i) {
    tried.push_back(candidates[i]);
  }
  return tried;
}

// "storage node 'a' unreachable, storage node 'b' unreachable" — every
// dead replica named, the per-node phrase kept stable for drills that
// grep for it.
std::string NameDeadReplicas(const std::vector<std::string>& unreachable,
                             const std::vector<std::string>& down) {
  std::string out;
  for (const std::string& node : unreachable) {
    if (!out.empty()) out += ", ";
    out += "storage node '" + node + "' unreachable";
  }
  for (const std::string& node : down) {
    if (!out.empty()) out += ", ";
    out += "storage node '" + node + "' down";
  }
  return out;
}

}  // namespace

ClusterTableSource::ClusterTableSource(std::string self, Network* net,
                                       const PlacementState* placement,
                                       const MembershipTracker* membership,
                                       Options options)
    : self_(std::move(self)),
      net_(net),
      placement_(placement),
      membership_(membership),
      options_(options) {}

void ClusterTableSource::SendAttempt(const std::string& name,
                                     ShardState* state, int64_t now_us,
                                     bool hedge) const {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  const std::string& owner =
      state->candidates[state->next_attempt % state->candidates.size()];
  const bool first = state->next_attempt == 0;
  uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_request_id_++;
    pending_.emplace(id, state->slot);
  }
  state->ids.push_back(id);
  ++state->next_attempt;
  state->in_flight = true;
  state->attempt_sent_us = now_us;
  if (state->first_sent_us < 0) state->first_sent_us = now_us;
  if (hedge) state->hedged = true;

  reg.GetCounter("cluster.replica.attempts")->Add();
  if (first) {
    reg.GetCounter("cluster.shard_fetches")->Add();
  } else if (hedge) {
    reg.GetCounter("cluster.failover.hedged")->Add();
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.hedge";
    ev.detail = name + "#" + std::to_string(state->shard) + " -> " + owner;
    ev.value = static_cast<int64_t>(state->shard);
    obs::SessionTracer::Default().Record(std::move(ev));
  } else {
    reg.GetCounter("cluster.failover.reroutes")->Add();
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.failover";
    ev.detail = name + "#" + std::to_string(state->shard) +
                (state->failed.empty() ? "" : " " + state->failed.back()) +
                " -> " + owner;
    ev.value = static_cast<int64_t>(state->shard);
    obs::SessionTracer::Default().Record(std::move(ev));
  }

  Message msg;
  msg.from = self_;
  msg.to = owner;
  ShardFetchMsg fetch;
  fetch.request_id = id;
  fetch.table_name = name;
  fetch.shard = state->shard;
  fetch.ring_epoch = state->ring_epoch;
  msg.payload = std::move(fetch);
  // mu_ is a leaf: the network's own lock is taken with it released.
  Status sent = net_->Send(std::move(msg));
  if (!sent.ok()) {
    // A synchronous send failure (no route to the peer) is an instant
    // failover trigger, not a timeout's worth of waiting.
    reg.GetCounter("cluster.shard_fetch_failures")->Add();
    state->in_flight = false;
    if (std::find(state->failed.begin(), state->failed.end(), owner) ==
        state->failed.end()) {
      state->failed.push_back(owner);
    }
  }
}

Result<VersionedTable> ClusterTableSource::Fetch(
    const std::string& name) const {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  // Stale-epoch rejections re-resolve placement and retry: the fresh
  // FetchOnce snapshots the placement again, which by then has adopted
  // (or is one heartbeat away from adopting) the rejecting node's newer
  // ring.  Bounded — anything else still failing after the retries is a
  // real error.
  constexpr int kEpochRetries = 3;
  for (int attempt = 0;; ++attempt) {
    Result<VersionedTable> result = FetchOnce(name);
    if (result.ok() || attempt >= kEpochRetries) return result;
    const Status& status = result.status();
    if (status.code() != StatusCode::kFailedPrecondition ||
        status.message().find("stale ring epoch") == std::string::npos) {
      return result;
    }
    reg.GetCounter("cluster.epoch.refetches")->Add();
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.epoch.refetch";
    ev.detail = name + " (attempt " + std::to_string(attempt + 1) + ")";
    obs::SessionTracer::Default().Record(std::move(ev));
    // The adoption travels on heartbeats; give one a moment to land.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.backoff_base_us));
  }
}

Result<VersionedTable> ClusterTableSource::FetchOnce(
    const std::string& name) const {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  {
    MutexLock lock(mu_);
    auto it = cache_.find(name);
    if (it != cache_.end()) {
      reg.GetCounter("cluster.table_cache_hits")->Add();
      return it->second.table;
    }
  }
  reg.GetCounter("cluster.table_cache_misses")->Add();
  const int64_t t0 = SteadyNowUs();
  const int64_t overall_deadline = t0 + options_.fetch_timeout_us;
  // Reads are served by COMMITTED owners throughout a transition — that
  // placement is what every replica still holds slices for.
  const PlacementState::Snapshot placement = placement_->Committed();
  const ShardRing& ring = *placement.ring;
  const uint64_t shard_count = ring.shard_count();

  // Build the per-shard failover plans: replicas ordered alive (or
  // not-yet-heard) first, then suspect; members already marked down are
  // skipped — they only reappear in the error if the live set fails too.
  std::vector<ShardState> states(shard_count);
  for (uint64_t s = 0; s < shard_count; ++s) {
    ShardState& st = states[s];
    st.shard = s;
    st.ring_epoch = placement.epoch;
    st.slot = std::make_shared<Pending>();
    st.send_gate_us = t0;
    std::vector<std::string> suspects;
    for (const std::string& owner : ring.OwnersForShard(s)) {
      MemberState state = membership_ == nullptr ? MemberState::kAlive
                                                 : membership_->StateOf(owner);
      if (state == MemberState::kDown) {
        reg.GetCounter("cluster.replica.skipped_down")->Add();
        st.skipped_down.push_back(owner);
        // Member-named trace, matching the convention of every other
        // cluster event: which replica was passed over, for which shard.
        obs::TraceEvent ev;
        ev.peer = self_;
        ev.kind = "cluster.replica.skipped_down";
        ev.detail = name + "#" + std::to_string(s) + " skipped " + owner;
        ev.value = static_cast<int64_t>(s);
        obs::SessionTracer::Default().Record(std::move(ev));
      } else if (state == MemberState::kSuspect) {
        suspects.push_back(owner);
      } else {
        st.candidates.push_back(owner);  // alive or unknown
      }
    }
    st.candidates.insert(st.candidates.end(), suspects.begin(),
                         suspects.end());
  }

  auto erase_pending = [&]() {
    MutexLock lock(mu_);
    for (const ShardState& st : states) {
      for (uint64_t id : st.ids) pending_.erase(id);
    }
  };
  auto fail_shard = [&](const ShardState& st,
                        const std::string& why) -> Status {
    reg.GetCounter("cluster.failover.exhausted")->Add();
    std::vector<std::string> dead = TriedOwners(st.candidates,
                                                st.next_attempt);
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.shard_unreachable";
    ev.detail = NameDeadReplicas(dead, st.skipped_down);
    ev.value = static_cast<int64_t>(st.shard);
    obs::SessionTracer::Default().Record(std::move(ev));
    return Status::Unavailable(
        "shard " + std::to_string(st.shard) + " of table '" + name + "' " +
        why + ": " + NameDeadReplicas(dead, st.skipped_down));
  };

  const size_t rounds =
      options_.attempts_per_replica < 1 ? 1 : options_.attempts_per_replica;
  while (true) {
    int64_t now = SteadyNowUs();
    bool all_done = true;
    int64_t next_wake = overall_deadline;
    std::vector<std::pair<ShardState*, bool>> sends;  // (shard, hedge?)
    Status terminal = Status::OK();
    const ShardState* exhausted = nullptr;
    {
      MutexLock lock(mu_);
      for (ShardState& st : states) {
        if (st.slot->done) {
          const ShardRowsMsg& response = st.slot->response;
          if (!response.error.empty()) {
            reg.GetCounter("cluster.shard_fetch_failures")->Add();
            StatusCode code = response.error_code == 0
                                  ? StatusCode::kInternal
                                  : static_cast<StatusCode>(
                                        response.error_code);
            // Replicas hold the same data: a data error from one would
            // come back from all, so it is terminal, not a failover.
            terminal = Status(
                code, "storage node '" + response.node + "' failed shard " +
                          std::to_string(st.shard) + " of table '" + name +
                          "': " + response.error);
            break;
          }
          continue;  // resolved with rows
        }
        all_done = false;
        if (st.candidates.empty()) {
          exhausted = &st;
          break;
        }
        const size_t total_attempts = rounds * st.candidates.size();
        if (st.in_flight) {
          int64_t expiry = st.attempt_sent_us + options_.replica_timeout_us;
          if (now >= expiry) {
            // This replica's chance is spent: fail over.
            reg.GetCounter("cluster.shard_fetch_failures")->Add();
            st.in_flight = false;
            const std::string& owner =
                st.candidates[(st.next_attempt - 1) % st.candidates.size()];
            if (std::find(st.failed.begin(), st.failed.end(), owner) ==
                st.failed.end()) {
              st.failed.push_back(owner);
            }
            if (st.next_attempt % st.candidates.size() == 0) {
              // A full round failed: exponential backoff before the next.
              int64_t round = static_cast<int64_t>(
                  st.next_attempt / st.candidates.size());
              st.send_gate_us =
                  now + (options_.backoff_base_us << (round - 1));
            } else {
              st.send_gate_us = now;  // next replica immediately
            }
          } else {
            next_wake = std::min(next_wake, expiry);
            if (options_.hedge_delay_us > 0 && !st.hedged &&
                st.next_attempt < total_attempts &&
                st.candidates.size() > 1) {
              int64_t hedge_at = st.attempt_sent_us + options_.hedge_delay_us;
              if (now >= hedge_at) {
                sends.emplace_back(&st, /*hedge=*/true);
              } else {
                next_wake = std::min(next_wake, hedge_at);
              }
            }
          }
        }
        if (!st.in_flight) {
          if (st.next_attempt >= total_attempts) {
            exhausted = &st;
            break;
          }
          if (now >= st.send_gate_us) {
            sends.emplace_back(&st, /*hedge=*/false);
          } else {
            next_wake = std::min(next_wake, st.send_gate_us);
          }
        }
      }
    }
    if (!terminal.ok()) {
      erase_pending();
      return terminal;
    }
    if (exhausted != nullptr) {
      erase_pending();
      return fail_shard(*exhausted,
                        "unavailable: replica set exhausted after " +
                            std::to_string(exhausted->next_attempt) +
                            " attempts");
    }
    if (all_done) break;
    if (now >= overall_deadline) {
      // Out of budget with shards unresolved: report the first one.
      erase_pending();
      for (const ShardState& st : states) {
        MutexLock lock(mu_);
        if (!st.slot->done) {
          return fail_shard(
              st, "unavailable: no replica answered within " +
                      std::to_string(options_.fetch_timeout_us / 1000) +
                      "ms");
        }
      }
    }
    if (!sends.empty()) {
      for (auto& [st, hedge] : sends) SendAttempt(name, st, now, hedge);
      continue;  // recompute deadlines around the new attempts
    }
    MutexLock lock(mu_);
    cv_.WaitFor(mu_, std::chrono::microseconds(
                         std::max<int64_t>(next_wake - now, 1000)));
  }
  erase_pending();

  std::vector<ShardSlice> owned;
  std::set<std::string> sources;
  bool any_failover = false;
  owned.reserve(shard_count);
  {
    MutexLock lock(mu_);
    for (ShardState& st : states) {
      const ShardRowsMsg& response = st.slot->response;
      reg.GetCounter("cluster.shard_rows_fetched")->Add(response.rows.size());
      sources.insert(response.node);
      if (st.next_attempt > 1) any_failover = true;
      owned.push_back(SliceOfMsg(response));
    }
  }
  std::vector<const ShardSlice*> views;
  views.reserve(owned.size());
  for (const ShardSlice& s : owned) views.push_back(&s);
  HYP_ASSIGN_OR_RETURN(MappingTable table, AssembleTable(name, views));

  VersionedTable vt;
  vt.version = owned.empty() ? 0 : owned.front().version;
  vt.table = std::make_shared<const MappingTable>(std::move(table));

  int64_t elapsed_us = SteadyNowUs() - t0;
  reg.GetHistogram("cluster.shard_fetch_latency_us", obs::LatencyBoundsUs())
      ->Observe(elapsed_us);
  if (any_failover) {
    // How long a degraded fetch took end to end — the failover latency
    // the R-sweep in fig_cluster reports.
    reg.GetHistogram("cluster.failover.latency_us", obs::LatencyBoundsUs())
        ->Observe(elapsed_us);
  }
  obs::TraceEvent ev;
  ev.peer = self_;
  ev.kind = "cluster.table_fetched";
  ev.detail = name;
  ev.value = static_cast<int64_t>(vt.table->size());
  obs::SessionTracer::Default().Record(std::move(ev));

  MutexLock lock(mu_);
  for (uint64_t s = 0; s < shard_count; ++s) {
    stats_.push_back(ShardStat{name, s, states[s].slot->response.node,
                               states[s].slot->response.rows.size()});
  }
  // A concurrent Fetch of the same table may have beaten us here; both
  // assembled from the same logical slices, so either copy serves.
  CacheEntry entry{std::move(vt), std::move(sources)};
  return cache_.emplace(name, std::move(entry)).first->second.table;
}

void ClusterTableSource::OnShardRows(const ShardRowsMsg& msg) {
  MutexLock lock(mu_);
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) return;  // fetch already failed or finished
  if (it->second->done) return;      // a faster replica (or hedge) won
  it->second->response = msg;
  it->second->done = true;
  cv_.NotifyAll();
}

void ClusterTableSource::OnMemberDown(const std::string& node) {
  std::vector<std::string> evicted;
  {
    MutexLock lock(mu_);
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->second.sources.count(node) > 0) {
        evicted.push_back(it->first);
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (evicted.empty()) return;
  obs::MetricRegistry::Default()
      .GetCounter("cluster.replica.cache_evictions")
      ->Add(evicted.size());
  for (std::string& table : evicted) {
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.cache_evicted";
    ev.detail = std::move(table) + " (source " + node + " down)";
    obs::SessionTracer::Default().Record(std::move(ev));
  }
}

void ClusterTableSource::Evict() {
  MutexLock lock(mu_);
  cache_.clear();
}

void ClusterTableSource::EvictTable(const std::string& name) {
  MutexLock lock(mu_);
  cache_.erase(name);
}

std::vector<ClusterTableSource::ShardStat> ClusterTableSource::ShardStats()
    const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace cluster
}  // namespace hyperion
