// Process shutdown signals for the long-running CLI verbs (`serve`,
// `node`): SIGINT/SIGTERM set a flag the serving loop polls, so the
// process can drain through QueryService::Shutdown / ClusterNode::Stop
// instead of dying mid-session.
//
// Deliberately minimal: a volatile sig_atomic_t flag is the only thing
// a signal handler may touch, and the handlers are installed without
// SA_RESTART so a signal interrupts a blocking read (the REPL's stdin)
// rather than silently restarting it.

#ifndef HYPERION_CLUSTER_SHUTDOWN_H_
#define HYPERION_CLUSTER_SHUTDOWN_H_

namespace hyperion {
namespace cluster {

/// \brief Installs SIGINT/SIGTERM handlers that mark shutdown as
/// requested.  Idempotent; call once near the top of a serving verb.
void InstallShutdownSignalHandlers();

/// \brief True once any installed handler has fired.
bool ShutdownRequested();

/// \brief Testing hook: clears the flag.
void ResetShutdownRequested();

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_SHUTDOWN_H_
