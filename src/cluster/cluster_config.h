// ClusterConfig: the one file every process of a cluster reads.
//
// The format is deliberately plain text (one `key value...` directive
// per line, '#' comments) rather than anything structured — a launch
// script writes it with echo, a human reads it with cat, and every node
// parses it identically, which is the actual requirement: placement is
// computed independently by each process from this file plus the shard
// ring, so any divergence in parsing would silently split the cluster.
//
//   shards 2
//   vnodes 64
//   replication 2
//   heartbeat_ms 200
//   suspect_ms 1000
//   down_ms 3000
//   fetch_timeout_ms 5000
//   replica_timeout_ms 1000
//   fetch_attempts 2
//   fetch_backoff_ms 50
//   hedge_ms 0
//   write_quorum 2
//   write_timeout_ms 5000
//   write_attempts 3
//   write_backoff_ms 50
//   repair_interval_ms 500
//   decommission_after_ms 0
//   node coord  coordinator 127.0.0.1 9100
//   node store1 storage     127.0.0.1 9101
//   node store2 storage     127.0.0.1 9102
//
// A port of 0 means "pick an ephemeral port"; the launch script then
// learns the real port from the node's port file (--port-file) and
// rewrites a resolved config for the remaining processes.

#ifndef HYPERION_CLUSTER_CLUSTER_CONFIG_H_
#define HYPERION_CLUSTER_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hyperion {
namespace cluster {

enum class NodeRole {
  kCoordinator,  // routes queries, owns no shards
  kStorage,      // serves shard slices of the mapping tables
};

const char* RoleName(NodeRole role);

struct NodeSpec {
  std::string id;
  NodeRole role = NodeRole::kStorage;
  std::string host;
  uint16_t port = 0;  // 0 => ephemeral, resolved via port file

  /// \brief "host:port" as the TCP transport expects it.
  std::string Address() const;
};

struct ClusterConfig {
  std::vector<NodeSpec> nodes;
  uint64_t shard_count = 2;
  uint64_t vnodes = 64;
  uint64_t replication = 1;        // copies of each shard (R-way placement)
  uint64_t heartbeat_ms = 200;     // beat period
  uint64_t suspect_ms = 1000;      // silence before alive -> suspect
  uint64_t down_ms = 3000;         // silence before suspect -> down
  uint64_t fetch_timeout_ms = 5000;  // whole-fetch deadline (all shards)
  uint64_t replica_timeout_ms = 1000;  // one replica attempt's deadline
  uint64_t fetch_attempts = 2;     // retry rounds over the replica set
  uint64_t fetch_backoff_ms = 50;  // backoff base between retry rounds
  uint64_t hedge_ms = 0;           // fire replica 2 after this wait (0=off)
  // Write path (cluster/write_path.h).  write_quorum 0 means "all alive
  // replicas" (the default); an explicit value must lie in
  // [1, replication] and the parser rejects anything else by line.
  uint64_t write_quorum = 0;        // acks required per shard (0=all-alive)
  uint64_t write_timeout_ms = 5000;  // whole-write deadline (all shards)
  uint64_t write_attempts = 3;      // send rounds per lagging replica
  uint64_t write_backoff_ms = 50;   // backoff base between send rounds
  uint64_t repair_interval_ms = 500;  // anti-entropy version-compare period
  // Rebalancing (cluster/placement.h): a storage node held kDown past
  // this deadline is decommissioned automatically by the coordinator —
  // its shards move to the surviving fleet.  0 disables the automatism;
  // operator join/decommission verbs work either way.
  uint64_t decommission_after_ms = 0;

  /// \brief Parses the directive format above.  Validates with
  /// Validate() before returning.
  static Result<ClusterConfig> Parse(const std::string& text);

  /// \brief Parse() over the contents of `path`.
  static Result<ClusterConfig> FromFile(const std::string& path);

  /// \brief Exactly one coordinator, at least one storage node, unique
  /// nonempty ids, positive counts, suspect_ms <= down_ms.  A
  /// replication factor above the storage fleet size is allowed (the
  /// ring degrades each replica set to the fleet).
  Status Validate() const;

  /// \brief The node named `id` (NotFound when absent).
  Result<NodeSpec> NodeById(const std::string& id) const;

  const NodeSpec* FindNode(const std::string& id) const;

  /// \brief Ids of all storage nodes, in config order (the shard ring
  /// sorts internally, so order does not affect placement).
  std::vector<std::string> StorageNodeIds() const;

  /// \brief The single coordinator spec.
  Result<NodeSpec> Coordinator() const;

  /// \brief Round-trips through Parse(): the resolved-config format the
  /// launch script writes after learning ephemeral ports.
  std::string ToString() const;
};

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_CLUSTER_CONFIG_H_
