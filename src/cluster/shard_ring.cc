#include "cluster/shard_ring.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>

namespace hyperion {
namespace cluster {

uint64_t StableHash64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

// FNV-1a diffuses input bytes forward only, so strings that differ just
// in their trailing characters — exactly the shape of virtual-point
// names like "shard#5#0".."shard#5#127" — hash to tightly clustered
// values.  Used raw as ring positions those clusters collapse a
// member's vnodes into a few arcs and wreck the balance the vnodes
// exist to provide.  A splitmix64-style finalizer spreads them; it is
// fixed arithmetic, so cross-process determinism is untouched.
uint64_t RingPosition(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::string VirtualPointName(std::string_view member, uint64_t replica) {
  std::string name(member);
  name.push_back('#');
  name.append(std::to_string(replica));
  return name;
}

void PlantPoints(std::string_view member, uint64_t vnodes,
                 std::map<uint64_t, std::string>* ring) {
  for (uint64_t r = 0; r < vnodes; ++r) {
    uint64_t point = RingPosition(StableHash64(VirtualPointName(member, r)));
    // Collisions are astronomically unlikely; first-planted wins
    // deterministically (members are planted in a fixed order).
    ring->emplace(point, std::string(member));
  }
}

std::string ShardRingName(uint64_t shard) {
  return "shard#" + std::to_string(shard);
}

}  // namespace

Result<ShardRing> ShardRing::Build(std::vector<std::string> storage_nodes,
                                   uint64_t shard_count, uint64_t vnodes,
                                   uint64_t replication) {
  if (storage_nodes.empty()) {
    return Status::InvalidArgument("shard ring needs at least one node");
  }
  if (shard_count == 0 || vnodes == 0) {
    return Status::InvalidArgument(
        "shard ring needs positive shard and virtual-node counts");
  }
  if (replication == 0) {
    return Status::InvalidArgument(
        "shard ring needs a positive replication factor");
  }
  std::set<std::string> unique(storage_nodes.begin(), storage_nodes.end());
  if (unique.size() != storage_nodes.size()) {
    return Status::InvalidArgument("shard ring nodes must be unique");
  }
  ShardRing ring;
  ring.shard_count_ = shard_count;
  ring.vnodes_ = vnodes;
  ring.replication_ = replication;
  ring.nodes_ = std::move(storage_nodes);
  for (uint64_t s = 0; s < shard_count; ++s) {
    PlantPoints(ShardRingName(s), vnodes, &ring.key_ring_);
  }
  // Node order must not affect placement: plant in sorted order so two
  // processes given the same membership in different orders agree.
  std::vector<std::string> sorted(ring.nodes_);
  std::sort(sorted.begin(), sorted.end());
  for (const std::string& node : sorted) {
    PlantPoints(node, vnodes, &ring.node_ring_);
  }
  // Replica sets degrade gracefully: a fleet smaller than the requested
  // factor yields the whole fleet per shard, never an error.
  ring.owners_of_shard_.reserve(shard_count);
  for (uint64_t s = 0; s < shard_count; ++s) {
    ring.owners_of_shard_.push_back(
        RingWalk(ring.node_ring_, RingPosition(StableHash64(ShardRingName(s))),
                 replication));
  }
  return ring;
}

const std::string& ShardRing::RingOwner(
    const std::map<uint64_t, std::string>& ring, uint64_t h) {
  auto it = ring.lower_bound(h);
  if (it == ring.end()) it = ring.begin();  // wrap
  return it->second;
}

std::vector<std::string> ShardRing::RingWalk(
    const std::map<uint64_t, std::string>& ring, uint64_t h, uint64_t want) {
  std::vector<std::string> members;
  std::set<std::string> seen;
  auto it = ring.lower_bound(h);
  // One full revolution visits every point; vnodes of already-chosen
  // members are skipped, so the walk yields distinct members in the
  // order their first points appear clockwise from h.
  for (size_t steps = 0; steps < ring.size() && seen.size() < want; ++steps) {
    if (it == ring.end()) it = ring.begin();  // wrap
    if (seen.insert(it->second).second) members.push_back(it->second);
    ++it;
  }
  return members;
}

uint64_t ShardRing::ShardForKey(std::string_view key) const {
  const std::string& name = RingOwner(key_ring_, RingPosition(StableHash64(key)));
  // Ring members are "shard#<n>"; parse the index back out.
  return std::strtoull(name.c_str() + name.find('#') + 1, nullptr, 10);
}

const std::string& ShardRing::OwnerForShard(uint64_t shard) const {
  return owners_of_shard_.at(shard).front();
}

const std::vector<std::string>& ShardRing::OwnersForShard(
    uint64_t shard) const {
  return owners_of_shard_.at(shard);
}

std::vector<uint64_t> ShardRing::ShardsOwnedBy(const std::string& node) const {
  std::vector<uint64_t> owned;
  for (uint64_t s = 0; s < shard_count_; ++s) {
    const std::vector<std::string>& owners = owners_of_shard_[s];
    if (std::find(owners.begin(), owners.end(), node) != owners.end()) {
      owned.push_back(s);
    }
  }
  return owned;
}

std::vector<uint64_t> ShardRing::PrimaryShardsOf(const std::string& node) const {
  std::vector<uint64_t> owned;
  for (uint64_t s = 0; s < shard_count_; ++s) {
    if (owners_of_shard_[s].front() == node) owned.push_back(s);
  }
  return owned;
}

std::vector<std::string> ShardRing::Placement() const {
  std::vector<std::string> primaries;
  primaries.reserve(owners_of_shard_.size());
  for (const std::vector<std::string>& owners : owners_of_shard_) {
    primaries.push_back(owners.front());
  }
  return primaries;
}

const std::vector<std::vector<std::string>>& ShardRing::ReplicaPlacement()
    const {
  return owners_of_shard_;
}

std::vector<ShardMove> ShardRing::Diff(const ShardRing& before,
                                       const ShardRing& after) {
  std::vector<ShardMove> moves;
  uint64_t shards = std::min(before.shard_count_, after.shard_count_);
  for (uint64_t s = 0; s < shards; ++s) {
    const std::vector<std::string>& old_owners = before.owners_of_shard_[s];
    const std::vector<std::string>& new_owners = after.owners_of_shard_[s];
    ShardMove move;
    move.shard = s;
    for (const std::string& node : new_owners) {
      if (std::find(old_owners.begin(), old_owners.end(), node) ==
          old_owners.end()) {
        move.gained.push_back(node);
      }
    }
    for (const std::string& node : old_owners) {
      if (std::find(new_owners.begin(), new_owners.end(), node) ==
          new_owners.end()) {
        move.lost.push_back(node);
      }
    }
    if (move.gained.empty() && move.lost.empty()) continue;
    std::sort(move.gained.begin(), move.gained.end());
    std::sort(move.lost.begin(), move.lost.end());
    moves.push_back(std::move(move));
  }
  return moves;
}

}  // namespace cluster
}  // namespace hyperion
