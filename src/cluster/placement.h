// PlacementState: the live, epoch-versioned shard placement every
// cluster role reads through.
//
// PR 6–8 froze the ShardRing at config-parse time; rebalancing makes it
// a mutable object with two slots:
//
//  * committed — the placement reads are served from and write quorums
//    are counted against, tagged with a monotonic ring epoch.  The
//    coordinator is the epoch authority: it alone mints new epochs, and
//    every other node adopts whatever (epoch, roster) the coordinator's
//    heartbeats announce (higher epoch wins, so a restarted node catches
//    up within one beat).
//
//  * pending — the placement a transition is converging toward, one
//    epoch above committed.  While pending exists, writes fan out to the
//    UNION of committed and pending owners (write_path.h) and new owners
//    pull handoff snapshots of their gained shards (node.h); reads stay
//    on committed owners throughout, which is what keeps covers
//    byte-identical across the transition.  Commit() promotes pending
//    atomically once the coordinator has seen every gained shard caught
//    up.
//
// Holders hand out shared_ptr snapshots: a Fetch/Apply in flight keeps
// the ring it started with even if the epoch commits under it — the
// epoch stamped into its messages then tells receivers how stale it is.
//
// Thread-safe; the internal mutex is a leaf (DESIGN.md §12).

#ifndef HYPERION_CLUSTER_PLACEMENT_H_
#define HYPERION_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "cluster/shard_ring.h"
#include "common/synchronization.h"

namespace hyperion {
namespace cluster {

/// \brief Thread-safe holder of the committed (and, mid-transition,
/// pending) shard placement, each tagged with its ring epoch.
class PlacementState {
 public:
  /// \brief One placement at one epoch.  `ring` is never null for a
  /// committed snapshot; a Pending() snapshot with a null ring means "no
  /// transition in flight" (its epoch is then 0).
  struct Snapshot {
    std::shared_ptr<const ShardRing> ring;
    uint64_t epoch = 0;
  };

  PlacementState(ShardRing initial, uint64_t epoch)
      : committed_(std::make_shared<const ShardRing>(std::move(initial))),
        epoch_(epoch) {}

  /// \brief The committed placement and its epoch.
  Snapshot Committed() const {
    MutexLock lock(mu_);
    return Snapshot{committed_, epoch_};
  }

  /// \brief The in-flight transition target (ring null when none).
  Snapshot Pending() const {
    MutexLock lock(mu_);
    return Snapshot{pending_, pending_ == nullptr ? 0 : pending_epoch_};
  }

  uint64_t epoch() const {
    MutexLock lock(mu_);
    return epoch_;
  }

  uint64_t pending_epoch() const {
    MutexLock lock(mu_);
    return pending_ == nullptr ? 0 : pending_epoch_;
  }

  bool HasPending() const {
    MutexLock lock(mu_);
    return pending_ != nullptr;
  }

  /// \brief Starts a transition toward `ring` at `epoch` (must exceed
  /// the committed epoch; a lower or equal one is ignored and returns
  /// false, which de-duplicates repeated heartbeat announcements).
  bool SetPending(ShardRing ring, uint64_t epoch) {
    MutexLock lock(mu_);
    if (epoch <= epoch_) return false;
    if (pending_ != nullptr && pending_epoch_ >= epoch) return false;
    pending_ = std::make_shared<const ShardRing>(std::move(ring));
    pending_epoch_ = epoch;
    return true;
  }

  void ClearPending() {
    MutexLock lock(mu_);
    pending_ = nullptr;
    pending_epoch_ = 0;
  }

  /// \brief Promotes pending to committed (no-op snapshot of the current
  /// committed state when no transition is in flight).
  Snapshot Commit() {
    MutexLock lock(mu_);
    if (pending_ != nullptr) {
      committed_ = std::move(pending_);
      epoch_ = pending_epoch_;
      pending_ = nullptr;
      pending_epoch_ = 0;
    }
    return Snapshot{committed_, epoch_};
  }

  /// \brief Installs `ring` as committed at `epoch` directly — how a
  /// follower adopts the coordinator's announcement.  Only a strictly
  /// higher epoch wins (returns false otherwise); a pending transition
  /// at or below the adopted epoch is cleared as resolved.
  bool Adopt(ShardRing ring, uint64_t epoch) {
    MutexLock lock(mu_);
    if (epoch <= epoch_) return false;
    committed_ = std::make_shared<const ShardRing>(std::move(ring));
    epoch_ = epoch;
    if (pending_ != nullptr && pending_epoch_ <= epoch) {
      pending_ = nullptr;
      pending_epoch_ = 0;
    }
    return true;
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const ShardRing> committed_ GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  std::shared_ptr<const ShardRing> pending_ GUARDED_BY(mu_);
  uint64_t pending_epoch_ GUARDED_BY(mu_) = 0;
};

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_PLACEMENT_H_
