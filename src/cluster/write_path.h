// The distributed write path: curator updates as first-class cluster
// operations.
//
// Reads became cluster-native in PR 6/7 (sharded placement, R-way
// replication, failover); this file adds the write half:
//
//  * ClusterTableSink — the coordinator-side dual of ClusterTableSource.
//    Apply(table, version) slices the post-write table with the shard
//    ring (storage/shard_split.h — original row indices included, so
//    replicas reassemble byte-identically), stamps every slice with one
//    global write sequence number, fans each shard's slice out to EVERY
//    replica of that shard, and blocks until a configurable write quorum
//    of per-replica acks arrives — retrying lagging replicas with
//    exponential backoff until the write deadline.
//
//  * ShardWriteLog — the storage-side per-shard monotonic version
//    counter plus the ordered log of applied write slices behind it.
//    Anything at or below the current version is an idempotent
//    duplicate (acked, not re-applied); versions above it may be
//    appended even across a gap (burned sequences, below), so the log
//    only enforces monotonicity.  The log optionally persists to a
//    directory (one frame-appended file per shard, the wire codec's own
//    format) so a restarted node resumes from its pre-crash state.
//
// Version semantics: every write ships one slice per shard — empty
// slices included, since a write may delete a shard's rows — so all
// shard versions advance in lockstep and the per-shard version IS the
// global write sequence.  A sequence number is reserved when Apply()
// starts and is BURNED if the write fails: a quorum-failed write may
// already have landed on some replicas (lost or post-deadline ack), so
// reusing its sequence for a different write would let those replicas
// ack the new write as a "duplicate" while still holding the aborted
// content — permanent divergence at identical versions, invisible to
// version-comparing anti-entropy.  Every slice therefore carries
// `committed_floor`, the last sequence that actually committed before
// it: a replica at or past the floor may apply the slice even across a
// gap (the gap holds only burned sequences, and a slice is full shard
// state, so the jump loses nothing), while a replica below the floor is
// genuinely stale — it is missing committed writes, possibly of other
// tables — and must reject.  A replica whose heartbeat advertises shard
// versions behind a peer's is detectably stale; ClusterNode's
// anti-entropy pass pulls the missing entries one at a time
// (RepairFetchMsg → WriteSliceMsg with the repair flag, gap-tolerant
// via EntryAfter) until the versions agree.  One residue is accepted
// and documented (DESIGN.md §14 non-goals): replicas that applied a
// slice of a FAILED write keep that content until the next committed
// write of the same table overwrites it — a failed write is
// indeterminate, never silently resurrected as a later "duplicate".
//
// Quorum: `quorum` 0 (the default) means "every replica the membership
// tracker currently believes alive" — re-evaluated while waiting, so a
// replica that dies mid-write and transitions to down stops being
// required.  An explicit quorum in [1, R] commits as soon as that many
// replicas of every shard acked, leaving the rest to anti-entropy.
//
// Threading: Apply() blocks the calling (REPL/driver) thread and is
// serialized by its own writer mutex, so concurrent callers queue
// rather than minting the same sequence; OnWriteAck() is called from
// the network's event-loop thread.  mu_ is a leaf (DESIGN.md §12):
// never held across Send(), and only ever taken after apply_mu_.

#ifndef HYPERION_CLUSTER_WRITE_PATH_H_
#define HYPERION_CLUSTER_WRITE_PATH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "cluster/placement.h"
#include "cluster/shard_ring.h"
#include "common/synchronization.h"
#include "core/mapping_table.h"
#include "p2p/message.h"
#include "p2p/network_interface.h"

namespace hyperion {
namespace cluster {

/// \brief Storage-side outcome of offering one write slice to a replica.
enum class ApplyOutcome {
  kApplied,    // at or past the slice's committed floor: applied, logged
  kDuplicate,  // sequence at or below current: idempotent no-op
  kStale,      // below the floor: this replica is missing committed writes
};

/// \brief Per-shard monotonic write log: the version counter replicas
/// ack against plus the entries anti-entropy replays.  Thread-safe; the
/// internal mutex is a leaf.
class ShardWriteLog {
 public:
  /// \brief Enables persistence under `dir` (created if absent) and
  /// loads any entries a previous incarnation left there.  Call before
  /// the first Append; never calling it keeps the log memory-only.
  Status Open(const std::string& dir, uint64_t shard_count);

  /// \brief Current version of `shard` (0 = no writes applied).
  uint64_t VersionOf(uint64_t shard) const;

  /// \brief (shard, version) for every shard with at least one entry —
  /// the piggyback heartbeats carry.  Shards ascending.
  std::vector<std::pair<uint64_t, uint64_t>> Versions() const;

  /// \brief Appends `entry` (its shard_version must be above
  /// VersionOf(shard); gaps are legal — they hold burned sequences) and
  /// persists it when Open() was called.
  Status Append(const WriteSliceMsg& entry);

  /// \brief The entry that moved `shard` to `version` (NotFound when the
  /// log has no such entry — e.g. a memory-only log of a younger node).
  Result<WriteSliceMsg> EntryAt(uint64_t shard, uint64_t version) const;

  /// \brief The oldest entry of `shard` with a version strictly above
  /// `version` — what a repair source serves, stepping over burned
  /// sequences the log never held (NotFound when nothing is newer).
  Result<WriteSliceMsg> EntryAfter(uint64_t shard, uint64_t version) const;

  /// \brief Raises `shard`'s version to at least `version` without an
  /// entry — how a handoff receiver adopts the source's write history it
  /// installed as live state rather than log entries.  VersionOf and the
  /// heartbeat piggyback report the floor; Append stays monotonic
  /// against it; anti-entropy chains from it.  Memory-only (a restart
  /// falls back to the log, DESIGN.md §15 non-goals).
  void SetFloor(uint64_t shard, uint64_t version);

 private:
  mutable Mutex mu_;
  std::string dir_ GUARDED_BY(mu_);  // empty = memory-only
  // shard -> (version -> the slice that created that version).
  std::map<uint64_t, std::map<uint64_t, WriteSliceMsg>> entries_
      GUARDED_BY(mu_);
  // shard -> handoff-installed version floor (see SetFloor).
  std::map<uint64_t, uint64_t> floors_ GUARDED_BY(mu_);
};

/// \brief Coordinator-side write fan-out: slices a curator's post-write
/// table and replicates every shard's slice to the shard's full replica
/// set under a write quorum.
class ClusterTableSink {
 public:
  struct Options {
    int64_t write_timeout_us = 5'000'000;    // whole write, all shards
    int64_t replica_timeout_us = 1'000'000;  // one replica attempt
    int64_t backoff_base_us = 50'000;        // doubles every retry round
    int attempts_per_replica = 3;            // send rounds per replica
    uint64_t quorum = 0;                     // 0 = all currently alive
  };

  /// \brief `self` is the coordinator's node id; `net`, `placement` and
  /// `membership` must outlive this sink (nullptr membership = treat
  /// every replica as alive).  Each Apply() snapshots the placement at
  /// entry: slices go to the COMMITTED owners of each shard (those count
  /// toward the quorum) and, mid-transition, additionally to the PENDING
  /// owners best-effort — so a write landed during a rebalance is
  /// already on the new owners when the epoch commits.
  ClusterTableSink(std::string self, Network* net,
                   const PlacementState* placement,
                   const MembershipTracker* membership, Options options);

  /// \brief How one committed write went.
  struct WriteReport {
    uint64_t sequence = 0;       // the write's global sequence number
    uint64_t table_version = 0;  // version replicas now serve the table at
    size_t acks = 0;             // replica acks received before commit
    /// Replicas that never acked (dead or slow) — anti-entropy's job now.
    std::vector<std::string> lagging;
  };

  /// \brief Replicates `table` (the full post-write state) at
  /// `table_version` to every replica of every shard.  Blocks until the
  /// quorum is met on every shard or the write deadline passes;
  /// kUnavailable names every replica that never acked.
  Result<WriteReport> Apply(const MappingTable& table, uint64_t table_version);

  /// \brief Routes a WriteAckMsg to its waiting Apply.  Call from the
  /// coordinator's network handler; unknown request ids are dropped.
  void OnWriteAck(const WriteAckMsg& msg);

  /// \brief Global sequence number of the last write ATTEMPT — a failed
  /// Apply burns its sequence, so this may run ahead of
  /// committed_sequence().
  uint64_t sequence() const;

  /// \brief Global sequence number of the last committed write — the
  /// floor stamped onto the next write's slices.
  uint64_t committed_sequence() const;

 private:
  struct Pending {
    WriteAckMsg response;
    bool done = false;
  };

  // One (shard, replica) delivery the fan-out drives to acked-or-spent.
  struct Target {
    uint64_t shard = 0;
    std::string replica;
    const WriteSliceMsg* slice = nullptr;  // into Apply()'s slice map
    std::shared_ptr<Pending> slot;
    std::vector<uint64_t> ids;     // request ids issued so far
    int attempts = 0;
    int64_t attempt_sent_us = -1;  // latest in-flight attempt
    int64_t send_gate_us = 0;      // backoff: no send before this
    bool in_flight = false;
    bool acked = false;
    bool spent = false;            // attempts exhausted, gave up
    // Committed owners count toward the quorum; pending-only owners are
    // best-effort union fan-out and never gate the commit.
    bool counted = true;
  };

  // Sends one WriteSliceMsg for `target`.  Registers the request id
  // under mu_, sends with mu_ released.
  void SendAttempt(Target* target, int64_t now_us);

  const std::string self_;
  Network* const net_;
  const PlacementState* const placement_;
  const MembershipTracker* const membership_;
  const Options options_;

  // Serializes whole Apply() calls: the second concurrent writer queues
  // behind the first instead of minting the same sequence.  Always taken
  // before mu_, never the other way around.
  Mutex apply_mu_ ACQUIRED_BEFORE(mu_);

  mutable Mutex mu_;
  mutable CondVar cv_;
  uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
  // Sequence of the last write attempt; advanced at Apply() entry, so a
  // failed write burns its number instead of leaking it to the next one.
  uint64_t write_seq_ GUARDED_BY(mu_) = 0;
  // Sequence of the last write that met its quorum (<= write_seq_).
  uint64_t committed_seq_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, std::shared_ptr<Pending>> pending_ GUARDED_BY(mu_);
};

}  // namespace cluster
}  // namespace hyperion

#endif  // HYPERION_CLUSTER_WRITE_PATH_H_
