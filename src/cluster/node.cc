#include "cluster/node.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperion {
namespace cluster {

Result<std::unique_ptr<ClusterNode>> ClusterNode::Create(ClusterConfig config,
                                                         std::string self,
                                                         TableStore store) {
  HYP_RETURN_IF_ERROR(config.Validate());
  HYP_ASSIGN_OR_RETURN(NodeSpec self_spec, config.NodeById(self));
  HYP_ASSIGN_OR_RETURN(
      ShardRing ring,
      ShardRing::Build(config.StorageNodeIds(), config.shard_count,
                       config.vnodes, config.replication));
  return std::unique_ptr<ClusterNode>(new ClusterNode(
      std::move(config), std::move(self_spec), std::move(store),
      std::move(ring)));
}

ClusterNode::ClusterNode(ClusterConfig config, NodeSpec self_spec,
                         TableStore store, ShardRing ring)
    : config_(std::move(config)),
      self_spec_(std::move(self_spec)),
      store_(std::move(store)),
      ring_(std::move(ring)),
      membership_(
          self_spec_.id,
          [this] {
            std::vector<std::string> roster;
            for (const NodeSpec& node : config_.nodes) {
              if (node.id != self_spec_.id) roster.push_back(node.id);
            }
            return roster;
          }(),
          static_cast<int64_t>(config_.suspect_ms) * 1000,
          static_cast<int64_t>(config_.down_ms) * 1000),
      incarnation_(static_cast<uint64_t>(std::time(nullptr))) {}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Bind() {
  {
    MutexLock lock(mu_);
    if (bound_) return Status::OK();
  }
  // Bind/Start/Stop are driver-thread calls (not concurrent with each
  // other); mu_ only shields the flags from the handler thread, so the
  // network work happens with it released (leaf rule, DESIGN.md §12).
  TcpNetwork::Options options;
  options.listen_host = self_spec_.host;
  options.base_port = self_spec_.port;
  net_ = std::make_unique<TcpNetwork>(options);
  HYP_RETURN_IF_ERROR(net_->RegisterPeer(
      self_spec_.id, [this](const Message& msg) { HandleMessage(msg); }));
  MutexLock lock(mu_);
  bound_ = true;
  return Status::OK();
}

Result<uint16_t> ClusterNode::ListenPort() const {
  {
    MutexLock lock(mu_);
    if (!bound_) return Status::FailedPrecondition("node is not bound");
  }
  return net_->ListenPort(self_spec_.id);
}

Status ClusterNode::WritePortFile(const std::string& path) const {
  HYP_ASSIGN_OR_RETURN(uint16_t port, ListenPort());
  // Write-then-rename: a poller never reads a half-written file.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot write port file '" + tmp + "'");
    out << port << "\n";
    if (!out.flush()) {
      return Status::IoError("cannot flush port file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot publish port file '" + path + "'");
  }
  return Status::OK();
}

Status ClusterNode::Start() {
  {
    MutexLock lock(mu_);
    if (!bound_) return Status::FailedPrecondition("Bind() before Start()");
    if (running_) return Status::OK();
  }
  if (self_spec_.role == NodeRole::kStorage) {
    // Every shard this node replicates, primary or not: replicas must
    // hold the slice to take over when the primary dies.
    std::vector<uint64_t> owned = ring_.ShardsOwnedBy(self_spec_.id);
    HYP_ASSIGN_OR_RETURN(
        slices_,
        SliceStore(
            store_,
            [this](const std::string& key) { return ring_.ShardForKey(key); },
            owned));
    if (!write_log_dir_.empty()) {
      // Replay the writes a previous incarnation applied: entries per
      // shard in version order (stepping over burned sequences the log
      // never held), so the final per-(table, shard) state is each
      // table's latest slice.  The loop has not started; slices_ is
      // still driver-thread-only.
      HYP_RETURN_IF_ERROR(
          write_log_.Open(write_log_dir_, config_.shard_count));
      for (const auto& [shard, latest] : write_log_.Versions()) {
        uint64_t v = 0;
        while (v < latest) {
          HYP_ASSIGN_OR_RETURN(WriteSliceMsg entry,
                               write_log_.EntryAfter(shard, v));
          InstallSlice(entry);
          v = entry.shard_version;
        }
      }
    }
  } else {
    ClusterTableSource::Options opts;
    opts.fetch_timeout_us =
        static_cast<int64_t>(config_.fetch_timeout_ms) * 1000;
    opts.replica_timeout_us =
        static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
    opts.backoff_base_us =
        static_cast<int64_t>(config_.fetch_backoff_ms) * 1000;
    opts.hedge_delay_us = static_cast<int64_t>(config_.hedge_ms) * 1000;
    opts.attempts_per_replica = static_cast<int>(config_.fetch_attempts);
    table_source_ = std::make_unique<ClusterTableSource>(
        self_spec_.id, net_.get(), &ring_, &membership_, opts);
    ClusterTableSink::Options wopts;
    wopts.write_timeout_us =
        static_cast<int64_t>(config_.write_timeout_ms) * 1000;
    wopts.replica_timeout_us =
        static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
    wopts.backoff_base_us =
        static_cast<int64_t>(config_.write_backoff_ms) * 1000;
    wopts.attempts_per_replica = static_cast<int>(config_.write_attempts);
    wopts.quorum = config_.write_quorum;
    table_sink_ = std::make_unique<ClusterTableSink>(
        self_spec_.id, net_.get(), &ring_, &membership_, wopts);
  }
  std::vector<std::pair<std::string, std::string>> routes;
  {
    MutexLock lock(mu_);
    for (const NodeSpec& node : config_.nodes) {
      if (node.id == self_spec_.id) continue;
      auto it = known_addrs_.find(node.id);
      if (it != known_addrs_.end()) {
        routes.emplace_back(node.id, it->second);
      } else if (node.port != 0) {
        known_addrs_[node.id] = node.Address();
        routes.emplace_back(node.id, node.Address());
      }
      // Port-0 peers without a learned address stay unreachable until a
      // heartbeat from them tells us where they landed.
    }
    running_ = true;
  }
  // mu_ is a leaf (DESIGN.md §12): network calls happen with it released.
  for (const auto& [id, addr] : routes) net_->SetRemotePeer(id, addr);
  HYP_RETURN_IF_ERROR(net_->Start());
  SendHeartbeats();
  ScheduleHeartbeat();
  ScheduleSweep();
  if (self_spec_.role == NodeRole::kStorage) ScheduleRepair();
  return Status::OK();
}

void ClusterNode::Stop() {
  Network::TimerId heartbeat = 0, sweep = 0, repair = 0;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    heartbeat = heartbeat_timer_;
    sweep = sweep_timer_;
    repair = repair_timer_;
  }
  if (heartbeat != 0) net_->CancelTimer(heartbeat);
  if (sweep != 0) net_->CancelTimer(sweep);
  if (repair != 0) net_->CancelTimer(repair);
  net_->Stop(1'000'000);
}

void ClusterNode::SetWriteLogDir(std::string dir) {
  write_log_dir_ = std::move(dir);
}

std::map<std::string, std::map<uint64_t, uint64_t>>
ClusterNode::PeerShardVersions() const {
  MutexLock lock(mu_);
  return peer_shard_versions_;
}

void ClusterNode::SetPeerAddress(const std::string& node,
                                 const std::string& host_port) {
  bool apply;
  {
    MutexLock lock(mu_);
    known_addrs_[node] = host_port;
    apply = bound_;
  }
  if (apply) net_->SetRemotePeer(node, host_port);
}

std::vector<uint64_t> ClusterNode::owned_shards() const {
  return ring_.ShardsOwnedBy(self_spec_.id);
}

bool ClusterNode::WaitAllAlive(int64_t timeout_us) {
  return net_->RunUntil([this] { return membership_.AllAlive(); },
                        timeout_us);
}

int64_t ClusterNode::NowUs() const { return net_->now_us(); }

void ClusterNode::HandleMessage(const Message& msg) {
  if (std::holds_alternative<HeartbeatMsg>(msg.payload)) {
    HandleHeartbeat(msg);
  } else if (std::holds_alternative<ShardFetchMsg>(msg.payload)) {
    HandleShardFetch(msg);
  } else if (const auto* rows = std::get_if<ShardRowsMsg>(&msg.payload)) {
    if (table_source_ != nullptr) table_source_->OnShardRows(*rows);
  } else if (std::holds_alternative<WriteSliceMsg>(msg.payload)) {
    HandleWriteSlice(msg);
  } else if (const auto* ack = std::get_if<WriteAckMsg>(&msg.payload)) {
    if (table_sink_ != nullptr) table_sink_->OnWriteAck(*ack);
  } else if (std::holds_alternative<RepairFetchMsg>(msg.payload)) {
    HandleRepairFetch(msg);
  }
  // Anything else (discovery, session traffic) belongs to a query
  // service sharing the transport, not to the cluster runtime.
}

void ClusterNode::HandleHeartbeat(const Message& msg) {
  const auto& hb = std::get<HeartbeatMsg>(msg.payload);
  membership_.Observe(hb.node, NowUs());
  if (!hb.shards.empty() && hb.shards.size() == hb.shard_versions.size()) {
    // Piggybacked write-log versions: the anti-entropy loop (and the
    // coordinator's `versions` verb) compare against these.
    MutexLock lock(mu_);
    std::map<uint64_t, uint64_t>& versions = peer_shard_versions_[hb.node];
    for (size_t i = 0; i < hb.shards.size(); ++i) {
      versions[hb.shards[i]] = hb.shard_versions[i];
    }
  }
  if (hb.listen_addr.empty() || config_.FindNode(hb.node) == nullptr) return;
  bool learned = false;
  {
    MutexLock lock(mu_);
    auto it = known_addrs_.find(hb.node);
    if (it == known_addrs_.end() || it->second != hb.listen_addr) {
      // Address learning: the sender bound an ephemeral port we did not
      // know (or moved); route future sends there.
      known_addrs_[hb.node] = hb.listen_addr;
      learned = true;
    }
  }
  if (learned) net_->SetRemotePeer(hb.node, hb.listen_addr);
}

void ClusterNode::HandleShardFetch(const Message& msg) {
  const auto& fetch = std::get<ShardFetchMsg>(msg.payload);
  ShardRowsMsg reply;
  reply.request_id = fetch.request_id;
  reply.table_name = fetch.table_name;
  reply.node = self_spec_.id;
  reply.shard = fetch.shard;
  if (self_spec_.role != NodeRole::kStorage) {
    Status status = Status::FailedPrecondition(
        "node '" + self_spec_.id + "' is not a storage node");
    reply.error = status.message();
    reply.error_code = static_cast<int32_t>(status.code());
  } else {
    auto it = slices_.find({fetch.table_name, fetch.shard});
    if (it == slices_.end()) {
      // Replica-aware ownership: any member of the shard's replica set
      // may legitimately serve it.
      bool replicates = false;
      if (fetch.shard < ring_.shard_count()) {
        const std::vector<std::string>& owners =
            ring_.OwnersForShard(fetch.shard);
        replicates = std::find(owners.begin(), owners.end(),
                               self_spec_.id) != owners.end();
      }
      Status status =
          !replicates
              ? Status::FailedPrecondition(
                    "node '" + self_spec_.id + "' does not replicate shard " +
                    std::to_string(fetch.shard))
              : Status::NotFound("node '" + self_spec_.id +
                                 "' has no table '" + fetch.table_name + "'");
      reply.error = status.message();
      reply.error_code = static_cast<int32_t>(status.code());
    } else {
      const ShardSlice& slice = it->second;
      reply.version = slice.version;
      reply.total_rows = slice.total_rows;
      reply.x_schema = slice.x_schema;
      reply.y_schema = slice.y_schema;
      reply.row_indices = slice.row_indices;
      reply.rows = slice.rows;
      obs::MetricRegistry::Default()
          .GetCounter("cluster.shard_rows_served")
          ->Add(slice.rows.size());
    }
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(reply);
  (void)net_->Send(std::move(out));
}

void ClusterNode::InstallSlice(const WriteSliceMsg& slice) {
  ShardSlice installed;
  installed.table_name = slice.table_name;
  installed.shard = slice.shard;
  installed.version = slice.table_version;
  installed.total_rows = slice.total_rows;
  installed.x_schema = slice.x_schema;
  installed.y_schema = slice.y_schema;
  installed.row_indices = slice.row_indices;
  installed.rows = slice.rows;
  slices_[{slice.table_name, slice.shard}] = std::move(installed);
}

Result<ApplyOutcome> ClusterNode::ApplyWriteSlice(const WriteSliceMsg& slice) {
  uint64_t current = write_log_.VersionOf(slice.shard);
  if (slice.shard_version <= current) return ApplyOutcome::kDuplicate;
  // A gap above the slice's committed floor holds only sequences burned
  // by failed writes — the slice is full shard state, so jumping them
  // loses nothing.  Below the floor the replica is missing committed
  // writes (possibly of other tables): applying would skip them forever,
  // since the shard version would advance past what repair compares.
  if (current < slice.committed_floor) return ApplyOutcome::kStale;
  HYP_RETURN_IF_ERROR(write_log_.Append(slice));
  InstallSlice(slice);
  return ApplyOutcome::kApplied;
}

void ClusterNode::HandleWriteSlice(const Message& msg) {
  const auto& slice = std::get<WriteSliceMsg>(msg.payload);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  if (slice.repair != 0) {
    // Anti-entropy reply: it only counts if it echoes the request id of
    // the fetch still outstanding for this shard — a delayed reply from
    // a timed-out earlier fetch must not clear a newer fetch's slot (or
    // sneak its payload in under it).
    {
      MutexLock lock(mu_);
      auto inflight = repair_inflight_.find(slice.shard);
      if (inflight == repair_inflight_.end() ||
          inflight->second.request_id != slice.request_id) {
        reg.GetCounter("cluster.repair.ignored_replies")->Add();
        return;
      }
      repair_inflight_.erase(inflight);
    }
    if (!slice.error.empty()) {
      reg.GetCounter("cluster.repair.failures")->Add();
      return;
    }
    Result<ApplyOutcome> outcome = ApplyWriteSlice(slice);
    if (!outcome.ok() || outcome.value() == ApplyOutcome::kStale) {
      reg.GetCounter("cluster.repair.failures")->Add();
      return;
    }
    if (outcome.value() == ApplyOutcome::kApplied) {
      reg.GetCounter("cluster.repair.entries_applied")->Add();
      obs::TraceEvent ev;
      ev.peer = self_spec_.id;
      ev.kind = "cluster.repair.applied";
      ev.detail = slice.table_name + "#" + std::to_string(slice.shard) +
                  " v" + std::to_string(slice.shard_version) + " from " +
                  msg.from;
      ev.value = static_cast<int64_t>(slice.shard_version);
      obs::SessionTracer::Default().Record(std::move(ev));
    }
    // Chain straight into the next pull for this shard (if any): a
    // replica many writes behind converges at network speed, not at
    // repair_interval_ms per entry.
    MaybeRepair(static_cast<int64_t>(slice.shard));
    return;
  }
  WriteAckMsg ack;
  ack.request_id = slice.request_id;
  ack.node = self_spec_.id;
  ack.shard = slice.shard;
  if (self_spec_.role != NodeRole::kStorage) {
    Status status = Status::FailedPrecondition(
        "node '" + self_spec_.id + "' is not a storage node");
    ack.error = status.message();
    ack.error_code = static_cast<int32_t>(status.code());
  } else {
    Result<ApplyOutcome> outcome = ApplyWriteSlice(slice);
    if (!outcome.ok()) {
      ack.error = outcome.status().message();
      ack.error_code = static_cast<int32_t>(outcome.status().code());
    } else if (outcome.value() == ApplyOutcome::kStale) {
      // This replica missed committed writes; anti-entropy must fill
      // the gap before this slice can land.  The coordinator sees
      // applied=0 and retries (or commits on quorum without us).
      reg.GetCounter("cluster.write.stale_rejected")->Add();
      obs::TraceEvent ev;
      ev.peer = self_spec_.id;
      ev.kind = "cluster.write.stale";
      ev.detail = slice.table_name + "#" + std::to_string(slice.shard) +
                  " offered v" + std::to_string(slice.shard_version) +
                  " (floor v" + std::to_string(slice.committed_floor) +
                  ") at v" + std::to_string(write_log_.VersionOf(slice.shard));
      ev.value = static_cast<int64_t>(slice.shard);
      obs::SessionTracer::Default().Record(std::move(ev));
      Status status = Status::FailedPrecondition(
          "replica '" + self_spec_.id + "' is stale on shard " +
          std::to_string(slice.shard));
      ack.error = status.message();
      ack.error_code = static_cast<int32_t>(status.code());
    } else {
      ack.applied = 1;
      reg.GetCounter(outcome.value() == ApplyOutcome::kApplied
                         ? "cluster.write.applied"
                         : "cluster.write.duplicates")
          ->Add();
    }
    ack.shard_version = write_log_.VersionOf(slice.shard);
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(ack);
  (void)net_->Send(std::move(out));
}

void ClusterNode::HandleRepairFetch(const Message& msg) {
  const auto& fetch = std::get<RepairFetchMsg>(msg.payload);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  WriteSliceMsg reply;
  reply.request_id = fetch.request_id;
  reply.origin = self_spec_.id;
  reply.shard = fetch.shard;
  reply.repair = 1;
  // The oldest entry above the requester's version: steps over burned
  // sequences this log never held.
  Result<WriteSliceMsg> entry =
      write_log_.EntryAfter(fetch.shard, fetch.from_version);
  if (entry.ok()) {
    reply = std::move(entry.value());
    reply.request_id = fetch.request_id;
    reply.origin = self_spec_.id;
    reply.repair = 1;
    reg.GetCounter("cluster.repair.entries_served")->Add();
  } else {
    reply.error = entry.status().message();
    reply.error_code = static_cast<int32_t>(entry.status().code());
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(reply);
  (void)net_->Send(std::move(out));
}

void ClusterNode::MaybeRepair(int64_t chain_shard) {
  if (self_spec_.role != NodeRole::kStorage) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  std::vector<uint64_t> owned = ring_.ShardsOwnedBy(self_spec_.id);
  // Both write_log_'s mutex and mu_ are leaves: versions first, then
  // the peer table under mu_, never nested.
  std::map<uint64_t, uint64_t> mine;
  for (uint64_t shard : owned) mine[shard] = write_log_.VersionOf(shard);
  int64_t now = NowUs();
  int64_t inflight_timeout_us =
      static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
  struct Pull {
    uint64_t shard;
    std::string peer;
    uint64_t from;
    uint64_t request_id;
  };
  std::vector<Pull> pulls;
  bool chained_converged = false;
  {
    MutexLock lock(mu_);
    for (uint64_t shard : owned) {
      if (chain_shard >= 0 && shard != static_cast<uint64_t>(chain_shard)) {
        continue;
      }
      auto inflight = repair_inflight_.find(shard);
      if (inflight != repair_inflight_.end()) {
        if (now - inflight->second.sent_us < inflight_timeout_us) continue;
        // Lost reply; ask again.  The stale fetch's id stops mattering
        // the moment the slot is re-armed below — a late reply to it is
        // dropped by the id check in HandleWriteSlice.
        repair_inflight_.erase(inflight);
      }
      // The most advanced peer is the one to pull from.
      std::string best;
      uint64_t best_version = mine[shard];
      for (const auto& [peer, versions] : peer_shard_versions_) {
        auto it = versions.find(shard);
        if (it != versions.end() && it->second > best_version) {
          best = peer;
          best_version = it->second;
        }
      }
      if (best.empty()) {
        if (chain_shard >= 0) chained_converged = true;
        continue;
      }
      uint64_t request_id = next_repair_id_++;
      pulls.push_back({shard, best, mine[shard], request_id});
      repair_inflight_[shard] = {request_id, now};
    }
  }
  if (chained_converged) {
    // The repair chain for this shard just caught up with every peer.
    reg.GetCounter("cluster.repair.converged")->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.repair.converged";
    ev.detail = "shard " + std::to_string(chain_shard) + " at v" +
                std::to_string(mine[static_cast<uint64_t>(chain_shard)]);
    ev.value = chain_shard;
    obs::SessionTracer::Default().Record(std::move(ev));
  }
  for (const Pull& pull : pulls) {
    reg.GetCounter("cluster.repair.fetches")->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.repair.started";
    ev.detail = "shard " + std::to_string(pull.shard) + " v" +
                std::to_string(pull.from) + " <- " + pull.peer;
    ev.value = static_cast<int64_t>(pull.shard);
    obs::SessionTracer::Default().Record(std::move(ev));
    Message msg;
    msg.from = self_spec_.id;
    msg.to = pull.peer;
    RepairFetchMsg fetch;
    fetch.request_id = pull.request_id;
    fetch.node = self_spec_.id;
    fetch.shard = pull.shard;
    fetch.from_version = pull.from;
    msg.payload = std::move(fetch);
    Status sent = net_->Send(std::move(msg));
    if (!sent.ok()) {
      // Free the slot only if it is still ours: a concurrent pass may
      // have timed this fetch out and re-armed the shard already.
      MutexLock lock(mu_);
      auto inflight = repair_inflight_.find(pull.shard);
      if (inflight != repair_inflight_.end() &&
          inflight->second.request_id == pull.request_id) {
        repair_inflight_.erase(inflight);
      }
    }
  }
}

void ClusterNode::SendHeartbeats() {
  // Resolve our own address before taking mu_ (ListenPort locks the
  // network; mu_ is a leaf and must not be held across it).
  auto port = net_->ListenPort(self_spec_.id);
  std::string listen_addr =
      self_spec_.host + ":" +
      std::to_string(port.ok() ? port.value() : self_spec_.port);
  // Storage beats piggyback the write-log versions (write_log_'s mutex
  // is a leaf like mu_, so snapshot before taking mu_ below).
  std::vector<std::pair<uint64_t, uint64_t>> shard_versions;
  if (self_spec_.role == NodeRole::kStorage) {
    shard_versions = write_log_.Versions();
  }
  std::vector<Message> beats;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    uint64_t beat = ++beat_;
    for (const NodeSpec& node : config_.nodes) {
      if (node.id == self_spec_.id) continue;
      // A peer without a known address (ephemeral port, not yet heard
      // from) cannot be beaten yet; it will reach us first.
      if (known_addrs_.find(node.id) == known_addrs_.end()) continue;
      Message msg;
      msg.from = self_spec_.id;
      msg.to = node.id;
      HeartbeatMsg hb;
      hb.node = self_spec_.id;
      hb.role = static_cast<uint8_t>(self_spec_.role);
      hb.listen_addr = listen_addr;
      hb.incarnation = incarnation_;
      hb.beat = beat;
      for (const auto& [shard, version] : shard_versions) {
        hb.shards.push_back(shard);
        hb.shard_versions.push_back(version);
      }
      msg.payload = std::move(hb);
      beats.push_back(std::move(msg));
    }
  }
  if (!beats.empty()) {
    obs::MetricRegistry::Default()
        .GetCounter("cluster.heartbeats_sent")
        ->Add(beats.size());
  }
  for (Message& msg : beats) (void)net_->Send(std::move(msg));
}

void ClusterNode::ScheduleHeartbeat() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  auto timer = net_->ScheduleTimer(
      self_spec_.id, static_cast<int64_t>(config_.heartbeat_ms) * 1000,
      [this] {
        SendHeartbeats();
        ScheduleHeartbeat();
      });
  bool stopped;
  {
    MutexLock lock(mu_);
    heartbeat_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  // Stop() may have raced us between the checks; it has already
  // cancelled whatever id it saw, so cancel the fresh one ourselves.
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

void ClusterNode::ScheduleSweep() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  // Sweep at half the suspect timeout: fine-grained enough that a dead
  // node is noticed within ~1.5x the configured silence budget.
  int64_t period_us = static_cast<int64_t>(config_.suspect_ms) * 500;
  if (period_us < 1000) period_us = 1000;
  auto timer = net_->ScheduleTimer(self_spec_.id, period_us, [this] {
    std::vector<MemberInfo> changed = membership_.SweepAt(NowUs());
    // Membership-change hook: an assembled table sourced from a node now
    // known dead must not outlive that knowledge — a recovered-then-
    // restarted node could otherwise be shadowed by a stale assembly.
    if (table_source_ != nullptr) {
      for (const MemberInfo& member : changed) {
        if (member.state == MemberState::kDown) {
          table_source_->OnMemberDown(member.node);
        }
      }
    }
    ScheduleSweep();
  });
  bool stopped;
  {
    MutexLock lock(mu_);
    sweep_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

void ClusterNode::ScheduleRepair() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  int64_t period_us = static_cast<int64_t>(config_.repair_interval_ms) * 1000;
  if (period_us < 1000) period_us = 1000;
  auto timer = net_->ScheduleTimer(self_spec_.id, period_us, [this] {
    MaybeRepair(-1);
    ScheduleRepair();
  });
  bool stopped;
  {
    MutexLock lock(mu_);
    repair_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

}  // namespace cluster
}  // namespace hyperion
