#include "cluster/node.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <utility>
#include <variant>

#include "obs/metrics.h"

namespace hyperion {
namespace cluster {

Result<std::unique_ptr<ClusterNode>> ClusterNode::Create(ClusterConfig config,
                                                         std::string self,
                                                         TableStore store) {
  HYP_RETURN_IF_ERROR(config.Validate());
  HYP_ASSIGN_OR_RETURN(NodeSpec self_spec, config.NodeById(self));
  HYP_ASSIGN_OR_RETURN(
      ShardRing ring,
      ShardRing::Build(config.StorageNodeIds(), config.shard_count,
                       config.vnodes, config.replication));
  return std::unique_ptr<ClusterNode>(new ClusterNode(
      std::move(config), std::move(self_spec), std::move(store),
      std::move(ring)));
}

ClusterNode::ClusterNode(ClusterConfig config, NodeSpec self_spec,
                         TableStore store, ShardRing ring)
    : config_(std::move(config)),
      self_spec_(std::move(self_spec)),
      store_(std::move(store)),
      ring_(std::move(ring)),
      membership_(
          self_spec_.id,
          [this] {
            std::vector<std::string> roster;
            for (const NodeSpec& node : config_.nodes) {
              if (node.id != self_spec_.id) roster.push_back(node.id);
            }
            return roster;
          }(),
          static_cast<int64_t>(config_.suspect_ms) * 1000,
          static_cast<int64_t>(config_.down_ms) * 1000),
      incarnation_(static_cast<uint64_t>(std::time(nullptr))) {}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Bind() {
  {
    MutexLock lock(mu_);
    if (bound_) return Status::OK();
  }
  // Bind/Start/Stop are driver-thread calls (not concurrent with each
  // other); mu_ only shields the flags from the handler thread, so the
  // network work happens with it released (leaf rule, DESIGN.md §12).
  TcpNetwork::Options options;
  options.listen_host = self_spec_.host;
  options.base_port = self_spec_.port;
  net_ = std::make_unique<TcpNetwork>(options);
  HYP_RETURN_IF_ERROR(net_->RegisterPeer(
      self_spec_.id, [this](const Message& msg) { HandleMessage(msg); }));
  MutexLock lock(mu_);
  bound_ = true;
  return Status::OK();
}

Result<uint16_t> ClusterNode::ListenPort() const {
  {
    MutexLock lock(mu_);
    if (!bound_) return Status::FailedPrecondition("node is not bound");
  }
  return net_->ListenPort(self_spec_.id);
}

Status ClusterNode::WritePortFile(const std::string& path) const {
  HYP_ASSIGN_OR_RETURN(uint16_t port, ListenPort());
  // Write-then-rename: a poller never reads a half-written file.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot write port file '" + tmp + "'");
    out << port << "\n";
    if (!out.flush()) {
      return Status::IoError("cannot flush port file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot publish port file '" + path + "'");
  }
  return Status::OK();
}

Status ClusterNode::Start() {
  {
    MutexLock lock(mu_);
    if (!bound_) return Status::FailedPrecondition("Bind() before Start()");
    if (running_) return Status::OK();
  }
  if (self_spec_.role == NodeRole::kStorage) {
    // Every shard this node replicates, primary or not: replicas must
    // hold the slice to take over when the primary dies.
    std::vector<uint64_t> owned = ring_.ShardsOwnedBy(self_spec_.id);
    HYP_ASSIGN_OR_RETURN(
        slices_,
        SliceStore(
            store_,
            [this](const std::string& key) { return ring_.ShardForKey(key); },
            owned));
  } else {
    ClusterTableSource::Options opts;
    opts.fetch_timeout_us =
        static_cast<int64_t>(config_.fetch_timeout_ms) * 1000;
    opts.replica_timeout_us =
        static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
    opts.backoff_base_us =
        static_cast<int64_t>(config_.fetch_backoff_ms) * 1000;
    opts.hedge_delay_us = static_cast<int64_t>(config_.hedge_ms) * 1000;
    opts.attempts_per_replica = static_cast<int>(config_.fetch_attempts);
    table_source_ = std::make_unique<ClusterTableSource>(
        self_spec_.id, net_.get(), &ring_, &membership_, opts);
  }
  std::vector<std::pair<std::string, std::string>> routes;
  {
    MutexLock lock(mu_);
    for (const NodeSpec& node : config_.nodes) {
      if (node.id == self_spec_.id) continue;
      auto it = known_addrs_.find(node.id);
      if (it != known_addrs_.end()) {
        routes.emplace_back(node.id, it->second);
      } else if (node.port != 0) {
        known_addrs_[node.id] = node.Address();
        routes.emplace_back(node.id, node.Address());
      }
      // Port-0 peers without a learned address stay unreachable until a
      // heartbeat from them tells us where they landed.
    }
    running_ = true;
  }
  // mu_ is a leaf (DESIGN.md §12): network calls happen with it released.
  for (const auto& [id, addr] : routes) net_->SetRemotePeer(id, addr);
  HYP_RETURN_IF_ERROR(net_->Start());
  SendHeartbeats();
  ScheduleHeartbeat();
  ScheduleSweep();
  return Status::OK();
}

void ClusterNode::Stop() {
  Network::TimerId heartbeat = 0, sweep = 0;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    heartbeat = heartbeat_timer_;
    sweep = sweep_timer_;
  }
  if (heartbeat != 0) net_->CancelTimer(heartbeat);
  if (sweep != 0) net_->CancelTimer(sweep);
  net_->Stop(1'000'000);
}

void ClusterNode::SetPeerAddress(const std::string& node,
                                 const std::string& host_port) {
  bool apply;
  {
    MutexLock lock(mu_);
    known_addrs_[node] = host_port;
    apply = bound_;
  }
  if (apply) net_->SetRemotePeer(node, host_port);
}

std::vector<uint64_t> ClusterNode::owned_shards() const {
  return ring_.ShardsOwnedBy(self_spec_.id);
}

bool ClusterNode::WaitAllAlive(int64_t timeout_us) {
  return net_->RunUntil([this] { return membership_.AllAlive(); },
                        timeout_us);
}

int64_t ClusterNode::NowUs() const { return net_->now_us(); }

void ClusterNode::HandleMessage(const Message& msg) {
  if (std::holds_alternative<HeartbeatMsg>(msg.payload)) {
    HandleHeartbeat(msg);
  } else if (std::holds_alternative<ShardFetchMsg>(msg.payload)) {
    HandleShardFetch(msg);
  } else if (const auto* rows = std::get_if<ShardRowsMsg>(&msg.payload)) {
    if (table_source_ != nullptr) table_source_->OnShardRows(*rows);
  }
  // Anything else (discovery, session traffic) belongs to a query
  // service sharing the transport, not to the cluster runtime.
}

void ClusterNode::HandleHeartbeat(const Message& msg) {
  const auto& hb = std::get<HeartbeatMsg>(msg.payload);
  membership_.Observe(hb.node, NowUs());
  if (hb.listen_addr.empty() || config_.FindNode(hb.node) == nullptr) return;
  bool learned = false;
  {
    MutexLock lock(mu_);
    auto it = known_addrs_.find(hb.node);
    if (it == known_addrs_.end() || it->second != hb.listen_addr) {
      // Address learning: the sender bound an ephemeral port we did not
      // know (or moved); route future sends there.
      known_addrs_[hb.node] = hb.listen_addr;
      learned = true;
    }
  }
  if (learned) net_->SetRemotePeer(hb.node, hb.listen_addr);
}

void ClusterNode::HandleShardFetch(const Message& msg) {
  const auto& fetch = std::get<ShardFetchMsg>(msg.payload);
  ShardRowsMsg reply;
  reply.request_id = fetch.request_id;
  reply.table_name = fetch.table_name;
  reply.node = self_spec_.id;
  reply.shard = fetch.shard;
  if (self_spec_.role != NodeRole::kStorage) {
    Status status = Status::FailedPrecondition(
        "node '" + self_spec_.id + "' is not a storage node");
    reply.error = status.message();
    reply.error_code = static_cast<int32_t>(status.code());
  } else {
    auto it = slices_.find({fetch.table_name, fetch.shard});
    if (it == slices_.end()) {
      // Replica-aware ownership: any member of the shard's replica set
      // may legitimately serve it.
      bool replicates = false;
      if (fetch.shard < ring_.shard_count()) {
        const std::vector<std::string>& owners =
            ring_.OwnersForShard(fetch.shard);
        replicates = std::find(owners.begin(), owners.end(),
                               self_spec_.id) != owners.end();
      }
      Status status =
          !replicates
              ? Status::FailedPrecondition(
                    "node '" + self_spec_.id + "' does not replicate shard " +
                    std::to_string(fetch.shard))
              : Status::NotFound("node '" + self_spec_.id +
                                 "' has no table '" + fetch.table_name + "'");
      reply.error = status.message();
      reply.error_code = static_cast<int32_t>(status.code());
    } else {
      const ShardSlice& slice = it->second;
      reply.version = slice.version;
      reply.total_rows = slice.total_rows;
      reply.x_schema = slice.x_schema;
      reply.y_schema = slice.y_schema;
      reply.row_indices = slice.row_indices;
      reply.rows = slice.rows;
      obs::MetricRegistry::Default()
          .GetCounter("cluster.shard_rows_served")
          ->Add(slice.rows.size());
    }
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(reply);
  (void)net_->Send(std::move(out));
}

void ClusterNode::SendHeartbeats() {
  // Resolve our own address before taking mu_ (ListenPort locks the
  // network; mu_ is a leaf and must not be held across it).
  auto port = net_->ListenPort(self_spec_.id);
  std::string listen_addr =
      self_spec_.host + ":" +
      std::to_string(port.ok() ? port.value() : self_spec_.port);
  std::vector<Message> beats;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    uint64_t beat = ++beat_;
    for (const NodeSpec& node : config_.nodes) {
      if (node.id == self_spec_.id) continue;
      // A peer without a known address (ephemeral port, not yet heard
      // from) cannot be beaten yet; it will reach us first.
      if (known_addrs_.find(node.id) == known_addrs_.end()) continue;
      Message msg;
      msg.from = self_spec_.id;
      msg.to = node.id;
      HeartbeatMsg hb;
      hb.node = self_spec_.id;
      hb.role = static_cast<uint8_t>(self_spec_.role);
      hb.listen_addr = listen_addr;
      hb.incarnation = incarnation_;
      hb.beat = beat;
      msg.payload = std::move(hb);
      beats.push_back(std::move(msg));
    }
  }
  if (!beats.empty()) {
    obs::MetricRegistry::Default()
        .GetCounter("cluster.heartbeats_sent")
        ->Add(beats.size());
  }
  for (Message& msg : beats) (void)net_->Send(std::move(msg));
}

void ClusterNode::ScheduleHeartbeat() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  auto timer = net_->ScheduleTimer(
      self_spec_.id, static_cast<int64_t>(config_.heartbeat_ms) * 1000,
      [this] {
        SendHeartbeats();
        ScheduleHeartbeat();
      });
  bool stopped;
  {
    MutexLock lock(mu_);
    heartbeat_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  // Stop() may have raced us between the checks; it has already
  // cancelled whatever id it saw, so cancel the fresh one ourselves.
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

void ClusterNode::ScheduleSweep() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  // Sweep at half the suspect timeout: fine-grained enough that a dead
  // node is noticed within ~1.5x the configured silence budget.
  int64_t period_us = static_cast<int64_t>(config_.suspect_ms) * 500;
  if (period_us < 1000) period_us = 1000;
  auto timer = net_->ScheduleTimer(self_spec_.id, period_us, [this] {
    std::vector<MemberInfo> changed = membership_.SweepAt(NowUs());
    // Membership-change hook: an assembled table sourced from a node now
    // known dead must not outlive that knowledge — a recovered-then-
    // restarted node could otherwise be shadowed by a stale assembly.
    if (table_source_ != nullptr) {
      for (const MemberInfo& member : changed) {
        if (member.state == MemberState::kDown) {
          table_source_->OnMemberDown(member.node);
        }
      }
    }
    ScheduleSweep();
  });
  bool stopped;
  {
    MutexLock lock(mu_);
    sweep_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

}  // namespace cluster
}  // namespace hyperion
