#include "cluster/node.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperion {
namespace cluster {

Result<std::unique_ptr<ClusterNode>> ClusterNode::Create(ClusterConfig config,
                                                         std::string self,
                                                         TableStore store) {
  HYP_RETURN_IF_ERROR(config.Validate());
  HYP_ASSIGN_OR_RETURN(NodeSpec self_spec, config.NodeById(self));
  HYP_ASSIGN_OR_RETURN(
      ShardRing ring,
      ShardRing::Build(config.StorageNodeIds(), config.shard_count,
                       config.vnodes, config.replication));
  return std::unique_ptr<ClusterNode>(new ClusterNode(
      std::move(config), std::move(self_spec), std::move(store),
      std::move(ring)));
}

ClusterNode::ClusterNode(ClusterConfig config, NodeSpec self_spec,
                         TableStore store, ShardRing ring)
    : config_(std::move(config)),
      self_spec_(std::move(self_spec)),
      store_(std::move(store)),
      // The coordinator is the epoch authority: it mints epoch 1 for the
      // config-time ring; everyone else starts at 0 and adopts the
      // committed epoch from the first heartbeat that announces one.
      placement_(std::move(ring),
                 self_spec_.role == NodeRole::kCoordinator ? 1 : 0),
      membership_(
          self_spec_.id,
          [this] {
            std::vector<std::string> roster;
            for (const NodeSpec& node : config_.nodes) {
              if (node.id != self_spec_.id) roster.push_back(node.id);
            }
            return roster;
          }(),
          static_cast<int64_t>(config_.suspect_ms) * 1000,
          static_cast<int64_t>(config_.down_ms) * 1000),
      incarnation_(static_cast<uint64_t>(std::time(nullptr))) {
  MutexLock lock(mu_);
  for (const NodeSpec& node : config_.nodes) {
    if (node.id != self_spec_.id) roster_.insert(node.id);
  }
}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Bind() {
  {
    MutexLock lock(mu_);
    if (bound_) return Status::OK();
  }
  // Bind/Start/Stop are driver-thread calls (not concurrent with each
  // other); mu_ only shields the flags from the handler thread, so the
  // network work happens with it released (leaf rule, DESIGN.md §12).
  TcpNetwork::Options options;
  options.listen_host = self_spec_.host;
  options.base_port = self_spec_.port;
  net_ = std::make_unique<TcpNetwork>(options);
  HYP_RETURN_IF_ERROR(net_->RegisterPeer(
      self_spec_.id, [this](const Message& msg) { HandleMessage(msg); }));
  MutexLock lock(mu_);
  bound_ = true;
  return Status::OK();
}

Result<uint16_t> ClusterNode::ListenPort() const {
  {
    MutexLock lock(mu_);
    if (!bound_) return Status::FailedPrecondition("node is not bound");
  }
  return net_->ListenPort(self_spec_.id);
}

Status ClusterNode::WritePortFile(const std::string& path) const {
  HYP_ASSIGN_OR_RETURN(uint16_t port, ListenPort());
  // Write-then-rename: a poller never reads a half-written file.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot write port file '" + tmp + "'");
    out << port << "\n";
    if (!out.flush()) {
      return Status::IoError("cannot flush port file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot publish port file '" + path + "'");
  }
  return Status::OK();
}

Status ClusterNode::Start() {
  {
    MutexLock lock(mu_);
    if (!bound_) return Status::FailedPrecondition("Bind() before Start()");
    if (running_) return Status::OK();
  }
  if (self_spec_.role == NodeRole::kStorage) {
    // Every shard this node replicates, primary or not: replicas must
    // hold the slice to take over when the primary dies.  The slicing
    // lambda keeps its own ring snapshot — an epoch adopted later
    // re-routes fetches, not this one-time load.
    std::shared_ptr<const ShardRing> ring = placement_.Committed().ring;
    std::vector<uint64_t> owned = ring->ShardsOwnedBy(self_spec_.id);
    HYP_ASSIGN_OR_RETURN(
        slices_,
        SliceStore(
            store_,
            [ring](const std::string& key) { return ring->ShardForKey(key); },
            owned));
    if (!write_log_dir_.empty()) {
      // Replay the writes a previous incarnation applied: entries per
      // shard in version order (stepping over burned sequences the log
      // never held), so the final per-(table, shard) state is each
      // table's latest slice.  The loop has not started; slices_ is
      // still driver-thread-only.
      HYP_RETURN_IF_ERROR(
          write_log_.Open(write_log_dir_, config_.shard_count));
      for (const auto& [shard, latest] : write_log_.Versions()) {
        uint64_t v = 0;
        while (v < latest) {
          Result<WriteSliceMsg> entry = write_log_.EntryAfter(shard, v);
          if (!entry.ok()) break;  // nothing persisted above v
          InstallSlice(entry.value());
          v = entry.value().shard_version;
        }
      }
    }
  } else {
    ClusterTableSource::Options opts;
    opts.fetch_timeout_us =
        static_cast<int64_t>(config_.fetch_timeout_ms) * 1000;
    opts.replica_timeout_us =
        static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
    opts.backoff_base_us =
        static_cast<int64_t>(config_.fetch_backoff_ms) * 1000;
    opts.hedge_delay_us = static_cast<int64_t>(config_.hedge_ms) * 1000;
    opts.attempts_per_replica = static_cast<int>(config_.fetch_attempts);
    table_source_ = std::make_unique<ClusterTableSource>(
        self_spec_.id, net_.get(), &placement_, &membership_, opts);
    ClusterTableSink::Options wopts;
    wopts.write_timeout_us =
        static_cast<int64_t>(config_.write_timeout_ms) * 1000;
    wopts.replica_timeout_us =
        static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
    wopts.backoff_base_us =
        static_cast<int64_t>(config_.write_backoff_ms) * 1000;
    wopts.attempts_per_replica = static_cast<int>(config_.write_attempts);
    wopts.quorum = config_.write_quorum;
    table_sink_ = std::make_unique<ClusterTableSink>(
        self_spec_.id, net_.get(), &placement_, &membership_, wopts);
  }
  std::vector<std::pair<std::string, std::string>> routes;
  {
    MutexLock lock(mu_);
    for (const NodeSpec& node : config_.nodes) {
      if (node.id == self_spec_.id) continue;
      auto it = known_addrs_.find(node.id);
      if (it != known_addrs_.end()) {
        routes.emplace_back(node.id, it->second);
      } else if (node.port != 0) {
        known_addrs_[node.id] = node.Address();
        routes.emplace_back(node.id, node.Address());
      }
      // Port-0 peers without a learned address stay unreachable until a
      // heartbeat from them tells us where they landed.
    }
    running_ = true;
  }
  // mu_ is a leaf (DESIGN.md §12): network calls happen with it released.
  for (const auto& [id, addr] : routes) net_->SetRemotePeer(id, addr);
  HYP_RETURN_IF_ERROR(net_->Start());
  SendHeartbeats();
  ScheduleHeartbeat();
  ScheduleSweep();
  if (self_spec_.role == NodeRole::kStorage) ScheduleRepair();
  return Status::OK();
}

void ClusterNode::Stop() {
  Network::TimerId heartbeat = 0, sweep = 0, repair = 0;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    heartbeat = heartbeat_timer_;
    sweep = sweep_timer_;
    repair = repair_timer_;
  }
  if (heartbeat != 0) net_->CancelTimer(heartbeat);
  if (sweep != 0) net_->CancelTimer(sweep);
  if (repair != 0) net_->CancelTimer(repair);
  net_->Stop(1'000'000);
}

void ClusterNode::SetWriteLogDir(std::string dir) {
  write_log_dir_ = std::move(dir);
}

std::map<std::string, std::map<uint64_t, uint64_t>>
ClusterNode::PeerShardVersions() const {
  MutexLock lock(mu_);
  return peer_shard_versions_;
}

void ClusterNode::SetPeerAddress(const std::string& node,
                                 const std::string& host_port) {
  bool apply;
  {
    MutexLock lock(mu_);
    known_addrs_[node] = host_port;
    apply = bound_;
  }
  if (apply) net_->SetRemotePeer(node, host_port);
}

std::vector<uint64_t> ClusterNode::owned_shards() const {
  return ring()->ShardsOwnedBy(self_spec_.id);
}

bool ClusterNode::WaitAllAlive(int64_t timeout_us) {
  return net_->RunUntil([this] { return membership_.AllAlive(); },
                        timeout_us);
}

int64_t ClusterNode::NowUs() const { return net_->now_us(); }

Result<uint64_t> ClusterNode::StartJoin(const std::string& id,
                                        const std::string& host_port) {
  if (self_spec_.role != NodeRole::kCoordinator) {
    return Status::FailedPrecondition(
        "only the coordinator starts a rebalance");
  }
  if (id == self_spec_.id || membership_.Contains(id)) {
    return Status::InvalidArgument("node '" + id +
                                   "' is already on the roster");
  }
  if (host_port.empty()) {
    return Status::InvalidArgument("join needs the node's host:port");
  }
  const PlacementState::Snapshot committed = placement_.Committed();
  std::vector<std::string> nodes = committed.ring->storage_nodes();
  nodes.push_back(id);
  std::sort(nodes.begin(), nodes.end());
  HYP_ASSIGN_OR_RETURN(
      ShardRing next,
      ShardRing::Build(std::move(nodes), config_.shard_count, config_.vnodes,
                       config_.replication));
  // Route to the joiner before announcing it, so its heartbeats and
  // handoff acks flow the moment anyone learns the pending ring.
  {
    MutexLock lock(mu_);
    known_addrs_[id] = host_port;
  }
  net_->SetRemotePeer(id, host_port);
  return BeginTransition(std::move(next), "join", id);
}

Result<uint64_t> ClusterNode::StartDecommission(const std::string& id) {
  if (self_spec_.role != NodeRole::kCoordinator) {
    return Status::FailedPrecondition(
        "only the coordinator starts a rebalance");
  }
  const PlacementState::Snapshot committed = placement_.Committed();
  std::vector<std::string> nodes = committed.ring->storage_nodes();
  auto it = std::find(nodes.begin(), nodes.end(), id);
  if (it == nodes.end()) {
    return Status::NotFound("node '" + id + "' is not on the storage ring");
  }
  nodes.erase(it);
  if (nodes.empty()) {
    return Status::FailedPrecondition(
        "cannot decommission the last storage node");
  }
  HYP_ASSIGN_OR_RETURN(
      ShardRing next,
      ShardRing::Build(std::move(nodes), config_.shard_count, config_.vnodes,
                       config_.replication));
  return BeginTransition(std::move(next), "decommission", id);
}

Result<uint64_t> ClusterNode::BeginTransition(ShardRing next,
                                              const std::string& verb,
                                              const std::string& subject) {
  const PlacementState::Snapshot committed = placement_.Committed();
  const uint64_t epoch = committed.epoch + 1;
  std::vector<ShardMove> moves = ShardRing::Diff(*committed.ring, next);
  // Every gained shard needs an alive handoff source among its
  // committed owners, or the new owner could never catch up.  A
  // decommissioned node that is still alive may itself be the source;
  // one the failure detector already marked down may not.
  for (const ShardMove& move : moves) {
    if (move.gained.empty()) continue;
    bool source = false;
    for (const std::string& owner :
         committed.ring->OwnersForShard(move.shard)) {
      if (membership_.StateOf(owner) != MemberState::kDown) {
        source = true;
        break;
      }
    }
    if (!source) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(move.shard) +
          " has no alive handoff source; refusing to " + verb + " '" +
          subject + "'");
    }
  }
  std::set<std::pair<uint64_t, std::string>> waiting;
  for (const ShardMove& move : moves) {
    for (const std::string& node : move.gained) {
      waiting.insert({move.shard, node});
    }
  }
  const int64_t now = NowUs();
  {
    MutexLock lock(mu_);
    if (transition_ != nullptr) {
      return Status::FailedPrecondition(
          "a rebalance transition is already in flight (epoch " +
          std::to_string(transition_->epoch) + ")");
    }
    // The ledger goes in before the pending epoch is announced: a
    // handoff ack can only arrive after a heartbeat carried the pending
    // ring, which happens after SetPending below.
    transition_ = std::make_unique<Transition>();
    transition_->epoch = epoch;
    transition_->waiting = std::move(waiting);
    transition_->started_us = now;
    transition_->moves = moves.size();
  }
  if (!placement_.SetPending(std::move(next), epoch)) {
    MutexLock lock(mu_);
    transition_.reset();
    return Status::FailedPrecondition("placement refused pending epoch " +
                                      std::to_string(epoch));
  }
  SyncRosterToPlacement(/*drop_unowned=*/false);
  obs::MetricRegistry::Default()
      .GetCounter("cluster.rebalance.started")
      ->Add();
  obs::TraceEvent ev;
  ev.peer = self_spec_.id;
  ev.kind = "cluster.rebalance.started";
  ev.detail = verb + " '" + subject + "' -> epoch " + std::to_string(epoch) +
              " (" + std::to_string(moves.size()) + " moves)";
  ev.value = static_cast<int64_t>(epoch);
  obs::SessionTracer::Default().Record(std::move(ev));
  SendHeartbeats();
  // A transition that moves nothing (or only sheds replicas) commits as
  // soon as something notices the empty ledger.
  MaybeCommitEpoch();
  return epoch;
}

void ClusterNode::SyncRosterToPlacement(bool drop_unowned) {
  const PlacementState::Snapshot committed = placement_.Committed();
  const PlacementState::Snapshot pending = placement_.Pending();
  std::set<std::string> desired;
  for (const std::string& id : committed.ring->storage_nodes()) {
    desired.insert(id);
  }
  if (pending.ring != nullptr) {
    for (const std::string& id : pending.ring->storage_nodes()) {
      desired.insert(id);
    }
  }
  for (const NodeSpec& node : config_.nodes) {
    if (node.role == NodeRole::kCoordinator) desired.insert(node.id);
  }
  desired.erase(self_spec_.id);
  std::vector<std::string> added, removed;
  {
    MutexLock lock(mu_);
    for (const std::string& id : desired) {
      if (roster_.find(id) == roster_.end()) added.push_back(id);
    }
    for (const std::string& id : roster_) {
      if (desired.find(id) == desired.end()) removed.push_back(id);
    }
    roster_ = std::move(desired);
    for (const std::string& id : removed) peer_shard_versions_.erase(id);
  }
  // membership_'s mutex is its own leaf — updated with mu_ released.
  for (const std::string& id : added) membership_.AddMember(id);
  for (const std::string& id : removed) membership_.RemoveMember(id);
  if (drop_unowned && self_spec_.role == NodeRole::kStorage) {
    // Shards this node no longer replicates stop being served; the
    // coordinator's next fetch re-resolves onto the new owners.  The
    // union with pending keeps handoff-installed slices alive while a
    // further transition is still converging.
    std::set<uint64_t> owned;
    for (uint64_t shard : committed.ring->ShardsOwnedBy(self_spec_.id)) {
      owned.insert(shard);
    }
    if (pending.ring != nullptr) {
      for (uint64_t shard : pending.ring->ShardsOwnedBy(self_spec_.id)) {
        owned.insert(shard);
      }
    }
    for (auto it = slices_.begin(); it != slices_.end();) {
      if (owned.find(it->first.second) == owned.end()) {
        it = slices_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ClusterNode::HandleMessage(const Message& msg) {
  if (std::holds_alternative<HeartbeatMsg>(msg.payload)) {
    HandleHeartbeat(msg);
  } else if (std::holds_alternative<ShardFetchMsg>(msg.payload)) {
    HandleShardFetch(msg);
  } else if (const auto* rows = std::get_if<ShardRowsMsg>(&msg.payload)) {
    if (table_source_ != nullptr) table_source_->OnShardRows(*rows);
  } else if (std::holds_alternative<WriteSliceMsg>(msg.payload)) {
    HandleWriteSlice(msg);
  } else if (const auto* ack = std::get_if<WriteAckMsg>(&msg.payload)) {
    if (table_sink_ != nullptr) table_sink_->OnWriteAck(*ack);
  } else if (std::holds_alternative<RepairFetchMsg>(msg.payload)) {
    HandleRepairFetch(msg);
  } else if (std::holds_alternative<HandoffFetchMsg>(msg.payload)) {
    HandleHandoffFetch(msg);
  } else if (std::holds_alternative<HandoffRowsMsg>(msg.payload)) {
    HandleHandoffRows(msg);
  } else if (std::holds_alternative<HandoffAckMsg>(msg.payload)) {
    HandleHandoffAck(msg);
  }
  // Anything else (discovery, session traffic) belongs to a query
  // service sharing the transport, not to the cluster runtime.
}

void ClusterNode::AdoptFromHeartbeat(const HeartbeatMsg& hb) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  if (!hb.ring_nodes.empty() && hb.ring_epoch > placement_.epoch()) {
    std::vector<std::string> nodes = hb.ring_nodes;
    std::sort(nodes.begin(), nodes.end());
    Result<ShardRing> ring =
        ShardRing::Build(std::move(nodes), config_.shard_count,
                         config_.vnodes, config_.replication);
    if (ring.ok() &&
        placement_.Adopt(std::move(ring.value()), hb.ring_epoch)) {
      // Adoption resolves any pending transition at or below the new
      // epoch (placement_ cleared it); drop the handoff pulls armed for
      // it so a late reply cannot install under the committed ring.
      if (!placement_.HasPending()) {
        MutexLock lock(mu_);
        handoff_inflight_.clear();
      }
      SyncRosterToPlacement(/*drop_unowned=*/true);
      reg.GetCounter("cluster.epoch.adopted")->Add();
      obs::TraceEvent ev;
      ev.peer = self_spec_.id;
      ev.kind = "cluster.epoch.adopted";
      ev.detail = "epoch " + std::to_string(hb.ring_epoch) + " from " +
                  hb.node + " (" + std::to_string(hb.ring_nodes.size()) +
                  " storage nodes)";
      ev.value = static_cast<int64_t>(hb.ring_epoch);
      obs::SessionTracer::Default().Record(std::move(ev));
    }
  }
  if (!hb.pending_nodes.empty() && hb.pending_epoch > placement_.epoch()) {
    std::vector<std::string> nodes = hb.pending_nodes;
    std::sort(nodes.begin(), nodes.end());
    Result<ShardRing> ring =
        ShardRing::Build(std::move(nodes), config_.shard_count,
                         config_.vnodes, config_.replication);
    if (ring.ok() &&
        placement_.SetPending(std::move(ring.value()), hb.pending_epoch)) {
      // Joining members enter the roster now (their heartbeats must be
      // heard); leavers stay until the epoch commits.
      SyncRosterToPlacement(/*drop_unowned=*/false);
      if (self_spec_.role == NodeRole::kStorage) MaybeHandoff();
    }
  }
}

void ClusterNode::HandleHeartbeat(const Message& msg) {
  const auto& hb = std::get<HeartbeatMsg>(msg.payload);
  // Epoch adoption first: the announcement may put the sender (a
  // joining node heard of via the pending ring) onto the roster the
  // rest of this handler is gated by.
  AdoptFromHeartbeat(hb);
  bool in_roster;
  {
    MutexLock lock(mu_);
    in_roster = roster_.find(hb.node) != roster_.end();
  }
  if (!in_roster) return;
  membership_.Observe(hb.node, NowUs());
  if (!hb.shards.empty() && hb.shards.size() == hb.shard_versions.size()) {
    // Piggybacked write-log versions: the anti-entropy loop (and the
    // coordinator's `versions` verb) compare against these.
    MutexLock lock(mu_);
    std::map<uint64_t, uint64_t>& versions = peer_shard_versions_[hb.node];
    for (size_t i = 0; i < hb.shards.size(); ++i) {
      versions[hb.shards[i]] = hb.shard_versions[i];
    }
  }
  if (!hb.listen_addr.empty()) {
    bool learned = false;
    {
      MutexLock lock(mu_);
      auto it = known_addrs_.find(hb.node);
      if (it == known_addrs_.end() || it->second != hb.listen_addr) {
        // Address learning: the sender bound an ephemeral port we did
        // not know (or moved); route future sends there.
        known_addrs_[hb.node] = hb.listen_addr;
        learned = true;
      }
    }
    if (learned) net_->SetRemotePeer(hb.node, hb.listen_addr);
  }
  if (!hb.peer_nodes.empty() &&
      hb.peer_nodes.size() == hb.peer_addrs.size()) {
    // Gossiped third-party addresses fill gaps only: a peer we have an
    // entry for keeps it (that peer's own listen_addr is authoritative
    // for moves; stale gossip must not undo a direct learning).
    std::vector<std::pair<std::string, std::string>> filled;
    {
      MutexLock lock(mu_);
      for (size_t i = 0; i < hb.peer_nodes.size(); ++i) {
        const std::string& peer = hb.peer_nodes[i];
        const std::string& addr = hb.peer_addrs[i];
        if (peer == self_spec_.id || addr.empty()) continue;
        if (known_addrs_.find(peer) != known_addrs_.end()) continue;
        known_addrs_[peer] = addr;
        filled.emplace_back(peer, addr);
      }
    }
    for (const auto& [peer, addr] : filled) net_->SetRemotePeer(peer, addr);
  }
  // The beat may carry the last advertised write-log version the
  // commit gate was waiting on.
  if (self_spec_.role == NodeRole::kCoordinator) MaybeCommitEpoch();
}

void ClusterNode::HandleShardFetch(const Message& msg) {
  const auto& fetch = std::get<ShardFetchMsg>(msg.payload);
  const PlacementState::Snapshot committed = placement_.Committed();
  ShardRowsMsg reply;
  reply.request_id = fetch.request_id;
  reply.table_name = fetch.table_name;
  reply.node = self_spec_.id;
  reply.shard = fetch.shard;
  reply.ring_epoch = committed.epoch;
  if (self_spec_.role != NodeRole::kStorage) {
    Status status = Status::FailedPrecondition(
        "node '" + self_spec_.id + "' is not a storage node");
    reply.error = status.message();
    reply.error_code = static_cast<int32_t>(status.code());
  } else if (fetch.ring_epoch != 0 && fetch.ring_epoch < committed.epoch) {
    // The fetcher resolved placement under a ring this node has already
    // replaced — its owner choice is unreliable (this node may have
    // dropped the slice at the commit).  Reject loudly; the coordinator
    // re-resolves and refetches.
    Status status = Status::FailedPrecondition(
        "stale ring epoch " + std::to_string(fetch.ring_epoch) + " (node '" +
        self_spec_.id + "' is at " + std::to_string(committed.epoch) + ")");
    reply.error = status.message();
    reply.error_code = static_cast<int32_t>(status.code());
    obs::MetricRegistry::Default()
        .GetCounter("cluster.epoch.stale_rejected")
        ->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.epoch.stale";
    ev.detail = "fetch " + fetch.table_name + "#" +
                std::to_string(fetch.shard) + " at epoch " +
                std::to_string(fetch.ring_epoch) + " < " +
                std::to_string(committed.epoch) + " from " + msg.from;
    ev.value = static_cast<int64_t>(fetch.ring_epoch);
    obs::SessionTracer::Default().Record(std::move(ev));
  } else {
    auto it = slices_.find({fetch.table_name, fetch.shard});
    if (it == slices_.end()) {
      // Replica-aware ownership: any member of the shard's replica set
      // may legitimately serve it.
      bool replicates = false;
      if (fetch.shard < committed.ring->shard_count()) {
        const std::vector<std::string>& owners =
            committed.ring->OwnersForShard(fetch.shard);
        replicates = std::find(owners.begin(), owners.end(),
                               self_spec_.id) != owners.end();
      }
      Status status =
          !replicates
              ? Status::FailedPrecondition(
                    "node '" + self_spec_.id + "' does not replicate shard " +
                    std::to_string(fetch.shard))
              : Status::NotFound("node '" + self_spec_.id +
                                 "' has no table '" + fetch.table_name + "'");
      reply.error = status.message();
      reply.error_code = static_cast<int32_t>(status.code());
    } else {
      const ShardSlice& slice = it->second;
      reply.version = slice.version;
      reply.total_rows = slice.total_rows;
      reply.x_schema = slice.x_schema;
      reply.y_schema = slice.y_schema;
      reply.row_indices = slice.row_indices;
      reply.rows = slice.rows;
      obs::MetricRegistry::Default()
          .GetCounter("cluster.shard_rows_served")
          ->Add(slice.rows.size());
    }
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(reply);
  (void)net_->Send(std::move(out));
}

void ClusterNode::InstallSlice(const WriteSliceMsg& slice) {
  ShardSlice installed;
  installed.table_name = slice.table_name;
  installed.shard = slice.shard;
  installed.version = slice.table_version;
  installed.total_rows = slice.total_rows;
  installed.x_schema = slice.x_schema;
  installed.y_schema = slice.y_schema;
  installed.row_indices = slice.row_indices;
  installed.rows = slice.rows;
  slices_[{slice.table_name, slice.shard}] = std::move(installed);
}

Result<ApplyOutcome> ClusterNode::ApplyWriteSlice(const WriteSliceMsg& slice) {
  uint64_t current = write_log_.VersionOf(slice.shard);
  if (slice.shard_version <= current) return ApplyOutcome::kDuplicate;
  // A gap above the slice's committed floor holds only sequences burned
  // by failed writes — the slice is full shard state, so jumping them
  // loses nothing.  Below the floor the replica is missing committed
  // writes (possibly of other tables): applying would skip them forever,
  // since the shard version would advance past what repair compares.
  if (current < slice.committed_floor) return ApplyOutcome::kStale;
  HYP_RETURN_IF_ERROR(write_log_.Append(slice));
  InstallSlice(slice);
  return ApplyOutcome::kApplied;
}

void ClusterNode::HandleWriteSlice(const Message& msg) {
  const auto& slice = std::get<WriteSliceMsg>(msg.payload);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  if (slice.repair != 0) {
    // Anti-entropy reply: it only counts if it echoes the request id of
    // the fetch still outstanding for this shard — a delayed reply from
    // a timed-out earlier fetch must not clear a newer fetch's slot (or
    // sneak its payload in under it).
    {
      MutexLock lock(mu_);
      auto inflight = repair_inflight_.find(slice.shard);
      if (inflight == repair_inflight_.end() ||
          inflight->second.request_id != slice.request_id) {
        reg.GetCounter("cluster.repair.ignored_replies")->Add();
        return;
      }
      repair_inflight_.erase(inflight);
    }
    if (!slice.error.empty()) {
      reg.GetCounter("cluster.repair.failures")->Add();
      return;
    }
    Result<ApplyOutcome> outcome = ApplyWriteSlice(slice);
    if (!outcome.ok() || outcome.value() == ApplyOutcome::kStale) {
      reg.GetCounter("cluster.repair.failures")->Add();
      return;
    }
    if (outcome.value() == ApplyOutcome::kApplied) {
      reg.GetCounter("cluster.repair.entries_applied")->Add();
      obs::TraceEvent ev;
      ev.peer = self_spec_.id;
      ev.kind = "cluster.repair.applied";
      ev.detail = slice.table_name + "#" + std::to_string(slice.shard) +
                  " v" + std::to_string(slice.shard_version) + " from " +
                  msg.from;
      ev.value = static_cast<int64_t>(slice.shard_version);
      obs::SessionTracer::Default().Record(std::move(ev));
    }
    // Chain straight into the next pull for this shard (if any): a
    // replica many writes behind converges at network speed, not at
    // repair_interval_ms per entry.
    MaybeRepair(static_cast<int64_t>(slice.shard));
    return;
  }
  WriteAckMsg ack;
  ack.request_id = slice.request_id;
  ack.node = self_spec_.id;
  ack.shard = slice.shard;
  ack.ring_epoch = placement_.epoch();
  if (self_spec_.role != NodeRole::kStorage) {
    Status status = Status::FailedPrecondition(
        "node '" + self_spec_.id + "' is not a storage node");
    ack.error = status.message();
    ack.error_code = static_cast<int32_t>(status.code());
  } else {
    // No epoch gate here, deliberately: a write racing an epoch commit
    // is stamped with the just-replaced epoch, and rejecting it would
    // fail its quorum for no safety gain — shard-version monotonicity
    // and the committed floor already reject every unsafe application
    // (DESIGN.md §15).
    Result<ApplyOutcome> outcome = ApplyWriteSlice(slice);
    if (!outcome.ok()) {
      ack.error = outcome.status().message();
      ack.error_code = static_cast<int32_t>(outcome.status().code());
    } else if (outcome.value() == ApplyOutcome::kStale) {
      // This replica missed committed writes; anti-entropy must fill
      // the gap before this slice can land.  The coordinator sees
      // applied=0 and retries (or commits on quorum without us).
      reg.GetCounter("cluster.write.stale_rejected")->Add();
      obs::TraceEvent ev;
      ev.peer = self_spec_.id;
      ev.kind = "cluster.write.stale";
      ev.detail = slice.table_name + "#" + std::to_string(slice.shard) +
                  " offered v" + std::to_string(slice.shard_version) +
                  " (floor v" + std::to_string(slice.committed_floor) +
                  ") at v" + std::to_string(write_log_.VersionOf(slice.shard));
      ev.value = static_cast<int64_t>(slice.shard);
      obs::SessionTracer::Default().Record(std::move(ev));
      Status status = Status::FailedPrecondition(
          "replica '" + self_spec_.id + "' is stale on shard " +
          std::to_string(slice.shard));
      ack.error = status.message();
      ack.error_code = static_cast<int32_t>(status.code());
    } else {
      ack.applied = 1;
      reg.GetCounter(outcome.value() == ApplyOutcome::kApplied
                         ? "cluster.write.applied"
                         : "cluster.write.duplicates")
          ->Add();
    }
    ack.shard_version = write_log_.VersionOf(slice.shard);
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(ack);
  (void)net_->Send(std::move(out));
}

void ClusterNode::HandleRepairFetch(const Message& msg) {
  const auto& fetch = std::get<RepairFetchMsg>(msg.payload);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  WriteSliceMsg reply;
  reply.request_id = fetch.request_id;
  reply.origin = self_spec_.id;
  reply.shard = fetch.shard;
  reply.repair = 1;
  // The oldest entry above the requester's version: steps over burned
  // sequences this log never held.
  Result<WriteSliceMsg> entry =
      write_log_.EntryAfter(fetch.shard, fetch.from_version);
  if (entry.ok()) {
    reply = std::move(entry.value());
    reply.request_id = fetch.request_id;
    reply.origin = self_spec_.id;
    reply.repair = 1;
    reg.GetCounter("cluster.repair.entries_served")->Add();
  } else {
    reply.error = entry.status().message();
    reply.error_code = static_cast<int32_t>(entry.status().code());
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(reply);
  (void)net_->Send(std::move(out));
}

void ClusterNode::HandleHandoffFetch(const Message& msg) {
  const auto& fetch = std::get<HandoffFetchMsg>(msg.payload);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  const uint64_t epoch = placement_.epoch();
  HandoffRowsMsg reply;
  reply.request_id = fetch.request_id;
  reply.node = self_spec_.id;
  reply.shard = fetch.shard;
  if (self_spec_.role != NodeRole::kStorage) {
    Status status = Status::FailedPrecondition(
        "node '" + self_spec_.id + "' is not a storage node");
    reply.error = status.message();
    reply.error_code = static_cast<int32_t>(status.code());
  } else if (fetch.ring_epoch != 0 && fetch.ring_epoch < epoch) {
    // The puller is converging on a transition this node has already
    // seen committed (or superseded) — its snapshot request is moot.
    Status status = Status::FailedPrecondition(
        "stale ring epoch " + std::to_string(fetch.ring_epoch) + " (node '" +
        self_spec_.id + "' is at " + std::to_string(epoch) + ")");
    reply.error = status.message();
    reply.error_code = static_cast<int32_t>(status.code());
    reg.GetCounter("cluster.epoch.stale_rejected")->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.epoch.stale";
    ev.detail = "handoff fetch shard " + std::to_string(fetch.shard) +
                " at epoch " + std::to_string(fetch.ring_epoch) + " < " +
                std::to_string(epoch) + " from " + msg.from;
    ev.value = static_cast<int64_t>(fetch.ring_epoch);
    obs::SessionTracer::Default().Record(std::move(ev));
  } else {
    // Full shard state: one slice per served table, all stamped with
    // this log's current version, which the receiver adopts as its
    // write-log floor.  Anti-entropy covers anything newer.
    reply.shard_version = write_log_.VersionOf(fetch.shard);
    for (const auto& [key, slice] : slices_) {
      if (key.second != fetch.shard) continue;
      WriteSliceMsg ws;
      ws.origin = self_spec_.id;
      ws.table_name = key.first;
      ws.shard = fetch.shard;
      ws.shard_version = reply.shard_version;
      ws.table_version = slice.version;
      ws.total_rows = slice.total_rows;
      ws.x_schema = slice.x_schema;
      ws.y_schema = slice.y_schema;
      ws.row_indices = slice.row_indices;
      ws.rows = slice.rows;
      ws.ring_epoch = epoch;
      reply.slices.push_back(std::move(ws));
    }
    reg.GetCounter("cluster.rebalance.handoff_served")->Add();
  }
  Message out;
  out.from = self_spec_.id;
  out.to = msg.from;
  out.payload = std::move(reply);
  (void)net_->Send(std::move(out));
}

void ClusterNode::HandleHandoffRows(const Message& msg) {
  const auto& rows = std::get<HandoffRowsMsg>(msg.payload);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  bool matched;
  {
    MutexLock lock(mu_);
    auto inflight = handoff_inflight_.find(rows.shard);
    matched = inflight != handoff_inflight_.end() &&
              inflight->second.request_id == rows.request_id;
    if (matched) handoff_inflight_.erase(inflight);
  }
  if (!rows.error.empty()) {
    // Only the reply the slot is waiting on may fail the pull; a late
    // error belongs to a retry that was already re-armed.
    if (matched) {
      reg.GetCounter("cluster.rebalance.handoff_failures")->Add();
    }
    return;  // the next handoff pass re-pulls (possibly elsewhere)
  }
  // Successful snapshots install even when the pull timed out and was
  // re-armed (`matched` false): the payload is complete, version-
  // stamped committed state, installs are idempotent, and the
  // coordinator max-merges duplicate acks.  Dropping late replies
  // would livelock a slow environment where every round trip exceeds
  // replica_timeout_ms — each retry restarts the same too-small
  // budget and no reply is ever current by the time it lands.
  const PlacementState::Snapshot pending = placement_.Pending();
  if (pending.ring == nullptr) return;  // transition resolved meanwhile
  uint64_t installed_rows = 0;
  if (write_log_.VersionOf(rows.shard) <= rows.shard_version) {
    // The slices are full shard state at the source's write-log version
    // — installed directly (several tables share one version, which a
    // log Append per table would violate); the floor adopts the version
    // so later writes and anti-entropy chain from it.
    for (const WriteSliceMsg& ws : rows.slices) {
      InstallSlice(ws);
      installed_rows += ws.rows.size();
    }
    write_log_.SetFloor(rows.shard, rows.shard_version);
  }
  obs::TraceEvent ev;
  ev.peer = self_spec_.id;
  ev.kind = "cluster.rebalance.handoff";
  ev.detail = "shard " + std::to_string(rows.shard) + " v" +
              std::to_string(rows.shard_version) + " (" +
              std::to_string(rows.slices.size()) + " tables, " +
              std::to_string(installed_rows) + " rows) from " + msg.from;
  ev.value = static_cast<int64_t>(rows.shard);
  obs::SessionTracer::Default().Record(std::move(ev));
  Result<NodeSpec> coordinator = config_.Coordinator();
  if (coordinator.ok()) {
    HandoffAckMsg ack;
    ack.request_id = rows.request_id;
    ack.node = self_spec_.id;
    ack.shard = rows.shard;
    ack.shard_version = write_log_.VersionOf(rows.shard);
    ack.rows = installed_rows;
    ack.ring_epoch = pending.epoch;
    Message out;
    out.from = self_spec_.id;
    out.to = coordinator.value().id;
    out.payload = std::move(ack);
    (void)net_->Send(std::move(out));
  }
  // Writes that landed on the old owners after the snapshot are above
  // the floor now — chain anti-entropy to pull them.
  MaybeRepair(static_cast<int64_t>(rows.shard));
}

void ClusterNode::HandleHandoffAck(const Message& msg) {
  const auto& ack = std::get<HandoffAckMsg>(msg.payload);
  if (self_spec_.role != NodeRole::kCoordinator) return;
  bool counted = false;
  {
    MutexLock lock(mu_);
    if (transition_ == nullptr || transition_->epoch != ack.ring_epoch) {
      return;
    }
    const auto key = std::make_pair(ack.shard, ack.node);
    if (transition_->waiting.erase(key) != 0) {
      transition_->acked[key] = ack.shard_version;
      counted = true;
    } else {
      // Duplicate ack after a re-pull: keep the freshest version.
      auto it = transition_->acked.find(key);
      if (it != transition_->acked.end()) {
        it->second = std::max(it->second, ack.shard_version);
      }
    }
  }
  if (counted) {
    obs::MetricRegistry::Default()
        .GetCounter("cluster.rebalance.rows_shipped")
        ->Add(ack.rows);
  }
  MaybeCommitEpoch();
}

void ClusterNode::MaybeCommitEpoch() {
  if (self_spec_.role != NodeRole::kCoordinator) return;
  // Both the sink's and placement's mutexes are leaves like mu_ —
  // snapshot the committed write sequence before taking mu_.
  const uint64_t committed_seq =
      table_sink_ != nullptr ? table_sink_->committed_sequence() : 0;
  const int64_t now = NowUs();
  uint64_t epoch = 0;
  size_t moves = 0;
  int64_t started_us = 0;
  {
    MutexLock lock(mu_);
    if (transition_ == nullptr || !transition_->waiting.empty()) return;
    for (const auto& [key, acked_version] : transition_->acked) {
      // The gained owner must have caught up to every write committed
      // so far — via the handoff snapshot or anti-entropy since; its
      // heartbeat-advertised version may run ahead of the ack's.
      uint64_t have = acked_version;
      auto peer = peer_shard_versions_.find(key.second);
      if (peer != peer_shard_versions_.end()) {
        auto shard = peer->second.find(key.first);
        if (shard != peer->second.end()) {
          have = std::max(have, shard->second);
        }
      }
      if (have < committed_seq) return;
    }
    epoch = transition_->epoch;
    moves = transition_->moves;
    started_us = transition_->started_us;
    transition_.reset();
  }
  // Bookkeeping before Commit(): the moment the epoch flips, observers
  // polling the committed snapshot must already find the transition
  // counted — counting after would open a window where the new epoch is
  // visible but cluster.rebalance.committed still reads the old total.
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  reg.GetCounter("cluster.rebalance.committed")->Add();
  reg.GetHistogram("cluster.rebalance.convergence_us", obs::LatencyBoundsUs())
      ->Observe(now - started_us);
  obs::TraceEvent ev;
  ev.peer = self_spec_.id;
  ev.kind = "cluster.rebalance.committed";
  ev.detail = "epoch " + std::to_string(epoch) + " (" +
              std::to_string(moves) + " moves, " +
              std::to_string(now - started_us) + " us)";
  ev.value = static_cast<int64_t>(epoch);
  obs::SessionTracer::Default().Record(std::move(ev));
  placement_.Commit();
  // Leavers drop off the roster; cached assemblies resolved under the
  // old ring are dropped so the next fetch routes to the new owners.
  SyncRosterToPlacement(/*drop_unowned=*/true);
  if (table_source_ != nullptr) table_source_->Evict();
  // Announce the commit immediately instead of waiting out a beat.
  SendHeartbeats();
}

void ClusterNode::MaybeAutoDecommission(
    const std::vector<MemberInfo>& members) {
  if (self_spec_.role != NodeRole::kCoordinator) return;
  if (config_.decommission_after_ms == 0) return;
  if (placement_.HasPending()) return;
  const PlacementState::Snapshot committed = placement_.Committed();
  const std::vector<std::string>& storage = committed.ring->storage_nodes();
  const int64_t deadline_us =
      static_cast<int64_t>(config_.down_ms + config_.decommission_after_ms) *
      1000;
  const int64_t now = NowUs();
  for (const MemberInfo& member : members) {
    if (member.state != MemberState::kDown) continue;
    if (member.last_heard_us == 0) continue;  // never launched
    if (now - member.last_heard_us < deadline_us) continue;
    if (std::find(storage.begin(), storage.end(), member.node) ==
        storage.end()) {
      continue;
    }
    Result<uint64_t> epoch = StartDecommission(member.node);
    // e.g. no alive handoff source left: skip, retried next sweep.
    if (!epoch.ok()) continue;
    obs::MetricRegistry::Default()
        .GetCounter("cluster.rebalance.auto_decommissions")
        ->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.rebalance.auto_decommission";
    ev.detail = "node '" + member.node + "' silent " +
                std::to_string((now - member.last_heard_us) / 1000) +
                " ms -> epoch " + std::to_string(epoch.value());
    ev.value = static_cast<int64_t>(epoch.value());
    obs::SessionTracer::Default().Record(std::move(ev));
    return;  // one transition at a time
  }
}

void ClusterNode::MaybeHandoff() {
  if (self_spec_.role != NodeRole::kStorage) return;
  const PlacementState::Snapshot pending = placement_.Pending();
  if (pending.ring == nullptr) return;
  const PlacementState::Snapshot committed = placement_.Committed();
  std::vector<uint64_t> current =
      committed.ring->ShardsOwnedBy(self_spec_.id);
  std::set<uint64_t> have(current.begin(), current.end());
  // Source choice happens before mu_ (membership_'s mutex is a leaf):
  // the first committed owner the failure detector does not call down.
  struct Pull {
    uint64_t shard = 0;
    std::string source;
    uint64_t request_id = 0;
  };
  std::vector<Pull> candidates;
  for (uint64_t shard : pending.ring->ShardsOwnedBy(self_spec_.id)) {
    if (have.find(shard) != have.end()) continue;  // already a replica
    for (const std::string& owner : committed.ring->OwnersForShard(shard)) {
      if (membership_.StateOf(owner) != MemberState::kDown) {
        candidates.push_back({shard, owner, 0});
        break;
      }
    }
  }
  if (candidates.empty()) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  const int64_t now = NowUs();
  const int64_t inflight_timeout_us =
      static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
  std::vector<Pull> pulls;
  {
    MutexLock lock(mu_);
    for (Pull& pull : candidates) {
      auto inflight = handoff_inflight_.find(pull.shard);
      if (inflight != handoff_inflight_.end()) {
        if (now - inflight->second.sent_us < inflight_timeout_us) continue;
        // Lost reply; pull again — the late reply is dropped by the
        // request-id check in HandleHandoffRows.
        handoff_inflight_.erase(inflight);
      }
      pull.request_id = next_repair_id_++;
      handoff_inflight_[pull.shard] = {pull.request_id, now};
      pulls.push_back(pull);
    }
  }
  for (const Pull& pull : pulls) {
    reg.GetCounter("cluster.rebalance.handoff_fetches")->Add();
    Message msg;
    msg.from = self_spec_.id;
    msg.to = pull.source;
    HandoffFetchMsg fetch;
    fetch.request_id = pull.request_id;
    fetch.node = self_spec_.id;
    fetch.shard = pull.shard;
    fetch.ring_epoch = pending.epoch;
    msg.payload = std::move(fetch);
    Status sent = net_->Send(std::move(msg));
    if (!sent.ok()) {
      // Free the slot only if it is still ours (mirrors MaybeRepair).
      MutexLock lock(mu_);
      auto inflight = handoff_inflight_.find(pull.shard);
      if (inflight != handoff_inflight_.end() &&
          inflight->second.request_id == pull.request_id) {
        handoff_inflight_.erase(inflight);
      }
    }
  }
}

void ClusterNode::MaybeRepair(int64_t chain_shard) {
  if (self_spec_.role != NodeRole::kStorage) return;
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  // Owned = union of committed and pending ownership: a gained shard
  // keeps converging on post-handoff writes before the epoch commits.
  const PlacementState::Snapshot committed = placement_.Committed();
  const PlacementState::Snapshot pending = placement_.Pending();
  std::vector<uint64_t> owned = committed.ring->ShardsOwnedBy(self_spec_.id);
  if (pending.ring != nullptr) {
    std::set<uint64_t> merged(owned.begin(), owned.end());
    for (uint64_t shard : pending.ring->ShardsOwnedBy(self_spec_.id)) {
      merged.insert(shard);
    }
    owned.assign(merged.begin(), merged.end());
  }
  // Both write_log_'s mutex and mu_ are leaves: versions first, then
  // the peer table under mu_, never nested.
  std::map<uint64_t, uint64_t> mine;
  for (uint64_t shard : owned) mine[shard] = write_log_.VersionOf(shard);
  int64_t now = NowUs();
  int64_t inflight_timeout_us =
      static_cast<int64_t>(config_.replica_timeout_ms) * 1000;
  struct Pull {
    uint64_t shard;
    std::string peer;
    uint64_t from;
    uint64_t request_id;
  };
  std::vector<Pull> pulls;
  bool chained_converged = false;
  {
    MutexLock lock(mu_);
    for (uint64_t shard : owned) {
      if (chain_shard >= 0 && shard != static_cast<uint64_t>(chain_shard)) {
        continue;
      }
      // A shard whose handoff snapshot is still on its way gets its
      // state wholesale; entry-by-entry replay would race it (and the
      // source's log may not reach below its own handoff floor).
      if (handoff_inflight_.find(shard) != handoff_inflight_.end()) continue;
      auto inflight = repair_inflight_.find(shard);
      if (inflight != repair_inflight_.end()) {
        if (now - inflight->second.sent_us < inflight_timeout_us) continue;
        // Lost reply; ask again.  The stale fetch's id stops mattering
        // the moment the slot is re-armed below — a late reply to it is
        // dropped by the id check in HandleWriteSlice.
        repair_inflight_.erase(inflight);
      }
      // The most advanced peer is the one to pull from.
      std::string best;
      uint64_t best_version = mine[shard];
      for (const auto& [peer, versions] : peer_shard_versions_) {
        auto it = versions.find(shard);
        if (it != versions.end() && it->second > best_version) {
          best = peer;
          best_version = it->second;
        }
      }
      if (best.empty()) {
        if (chain_shard >= 0) chained_converged = true;
        continue;
      }
      uint64_t request_id = next_repair_id_++;
      pulls.push_back({shard, best, mine[shard], request_id});
      repair_inflight_[shard] = {request_id, now};
    }
  }
  if (chained_converged) {
    // The repair chain for this shard just caught up with every peer.
    reg.GetCounter("cluster.repair.converged")->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.repair.converged";
    ev.detail = "shard " + std::to_string(chain_shard) + " at v" +
                std::to_string(mine[static_cast<uint64_t>(chain_shard)]);
    ev.value = chain_shard;
    obs::SessionTracer::Default().Record(std::move(ev));
  }
  for (const Pull& pull : pulls) {
    reg.GetCounter("cluster.repair.fetches")->Add();
    obs::TraceEvent ev;
    ev.peer = self_spec_.id;
    ev.kind = "cluster.repair.started";
    ev.detail = "shard " + std::to_string(pull.shard) + " v" +
                std::to_string(pull.from) + " <- " + pull.peer;
    ev.value = static_cast<int64_t>(pull.shard);
    obs::SessionTracer::Default().Record(std::move(ev));
    Message msg;
    msg.from = self_spec_.id;
    msg.to = pull.peer;
    RepairFetchMsg fetch;
    fetch.request_id = pull.request_id;
    fetch.node = self_spec_.id;
    fetch.shard = pull.shard;
    fetch.from_version = pull.from;
    msg.payload = std::move(fetch);
    Status sent = net_->Send(std::move(msg));
    if (!sent.ok()) {
      // Free the slot only if it is still ours: a concurrent pass may
      // have timed this fetch out and re-armed the shard already.
      MutexLock lock(mu_);
      auto inflight = repair_inflight_.find(pull.shard);
      if (inflight != repair_inflight_.end() &&
          inflight->second.request_id == pull.request_id) {
        repair_inflight_.erase(inflight);
      }
    }
  }
}

void ClusterNode::SendHeartbeats() {
  // Resolve our own address before taking mu_ (ListenPort locks the
  // network; mu_ is a leaf and must not be held across it).
  auto port = net_->ListenPort(self_spec_.id);
  std::string listen_addr =
      self_spec_.host + ":" +
      std::to_string(port.ok() ? port.value() : self_spec_.port);
  // Storage beats piggyback the write-log versions (write_log_'s mutex
  // is a leaf like mu_, so snapshot before taking mu_ below).  The
  // placement snapshot rides along the same way: every beat announces
  // the committed epoch and storage roster (plus the pending ones while
  // a transition converges), which is what peers adopt from.
  std::vector<std::pair<uint64_t, uint64_t>> shard_versions;
  if (self_spec_.role == NodeRole::kStorage) {
    shard_versions = write_log_.Versions();
  }
  const PlacementState::Snapshot committed = placement_.Committed();
  const PlacementState::Snapshot pending = placement_.Pending();
  std::vector<Message> beats;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    uint64_t beat = ++beat_;
    // Address gossip: share every roster address we know.  Storage
    // siblings boot blind to each other (seed configs carry port 0)
    // and handoff pulls need them to dial each other directly; the
    // coordinator knows everyone, so its beats close the loop.
    std::vector<std::string> gossip_nodes;
    std::vector<std::string> gossip_addrs;
    for (const std::string& member : roster_) {
      auto it = known_addrs_.find(member);
      if (it == known_addrs_.end() || it->second.empty()) continue;
      gossip_nodes.push_back(member);
      gossip_addrs.push_back(it->second);
    }
    for (const std::string& peer : roster_) {
      // A peer without a known address (ephemeral port, not yet heard
      // from) cannot be beaten yet; it will reach us first.
      if (known_addrs_.find(peer) == known_addrs_.end()) continue;
      Message msg;
      msg.from = self_spec_.id;
      msg.to = peer;
      HeartbeatMsg hb;
      hb.node = self_spec_.id;
      hb.role = static_cast<uint8_t>(self_spec_.role);
      hb.listen_addr = listen_addr;
      hb.incarnation = incarnation_;
      hb.beat = beat;
      for (const auto& [shard, version] : shard_versions) {
        hb.shards.push_back(shard);
        hb.shard_versions.push_back(version);
      }
      hb.ring_epoch = committed.epoch;
      hb.ring_nodes = committed.ring->storage_nodes();
      if (pending.ring != nullptr) {
        hb.pending_epoch = pending.epoch;
        hb.pending_nodes = pending.ring->storage_nodes();
      }
      hb.peer_nodes = gossip_nodes;
      hb.peer_addrs = gossip_addrs;
      msg.payload = std::move(hb);
      beats.push_back(std::move(msg));
    }
  }
  if (!beats.empty()) {
    obs::MetricRegistry::Default()
        .GetCounter("cluster.heartbeats_sent")
        ->Add(beats.size());
  }
  for (Message& msg : beats) (void)net_->Send(std::move(msg));
}

void ClusterNode::ScheduleHeartbeat() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  auto timer = net_->ScheduleTimer(
      self_spec_.id, static_cast<int64_t>(config_.heartbeat_ms) * 1000,
      [this] {
        SendHeartbeats();
        ScheduleHeartbeat();
      });
  bool stopped;
  {
    MutexLock lock(mu_);
    heartbeat_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  // Stop() may have raced us between the checks; it has already
  // cancelled whatever id it saw, so cancel the fresh one ourselves.
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

void ClusterNode::ScheduleSweep() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  // Sweep at half the suspect timeout: fine-grained enough that a dead
  // node is noticed within ~1.5x the configured silence budget.
  int64_t period_us = static_cast<int64_t>(config_.suspect_ms) * 500;
  if (period_us < 1000) period_us = 1000;
  auto timer = net_->ScheduleTimer(self_spec_.id, period_us, [this] {
    std::vector<MemberInfo> changed = membership_.SweepAt(NowUs());
    // Membership-change hook: an assembled table sourced from a node now
    // known dead must not outlive that knowledge — a recovered-then-
    // restarted node could otherwise be shadowed by a stale assembly.
    if (table_source_ != nullptr) {
      for (const MemberInfo& member : changed) {
        if (member.state == MemberState::kDown) {
          table_source_->OnMemberDown(member.node);
        }
      }
    }
    if (self_spec_.role == NodeRole::kCoordinator) {
      // The commit gate and the held-down deadline both ride the sweep:
      // a transition with nothing left to hand off (or whose last ack
      // raced a heartbeat) still commits promptly.
      MaybeCommitEpoch();
      MaybeAutoDecommission(membership_.Snapshot());
    }
    ScheduleSweep();
  });
  bool stopped;
  {
    MutexLock lock(mu_);
    sweep_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

void ClusterNode::ScheduleRepair() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  int64_t period_us = static_cast<int64_t>(config_.repair_interval_ms) * 1000;
  if (period_us < 1000) period_us = 1000;
  auto timer = net_->ScheduleTimer(self_spec_.id, period_us, [this] {
    MaybeRepair(-1);
    // Retries timed-out handoff pulls; a no-op without a pending ring.
    MaybeHandoff();
    ScheduleRepair();
  });
  bool stopped;
  {
    MutexLock lock(mu_);
    repair_timer_ = timer.ok() ? timer.value() : 0;
    stopped = !running_;
  }
  if (stopped && timer.ok()) net_->CancelTimer(timer.value());
}

}  // namespace cluster
}  // namespace hyperion
