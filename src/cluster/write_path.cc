#include "cluster/write_path.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "p2p/wire.h"
#include "storage/shard_split.h"

namespace hyperion {
namespace cluster {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string LogFilePath(const std::string& dir, uint64_t shard) {
  return dir + "/shard_" + std::to_string(shard) + ".log";
}

}  // namespace

// ---- ShardWriteLog -------------------------------------------------------

Status ShardWriteLog::Open(const std::string& dir, uint64_t shard_count) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create write-log dir '" + dir + "'");
  }
  MutexLock lock(mu_);
  dir_ = dir;
  for (uint64_t shard = 0; shard < shard_count; ++shard) {
    std::ifstream in(LogFilePath(dir, shard), std::ios::binary);
    if (!in) continue;  // no entries persisted for this shard yet
    std::ostringstream bytes;
    bytes << in.rdbuf();
    std::string buf = bytes.str();
    size_t pos = 0;
    bool torn = false;
    while (pos < buf.size()) {
      Result<wire::FrameView> frame =
          wire::PeekFrame(std::string_view(buf).substr(pos));
      if (!frame.ok() || !frame.value().complete) {
        // A torn tail (crash mid-append): everything before it is
        // intact.  The fragment must be cut off, not just skipped —
        // otherwise the next Append writes after it and every entry
        // from here on is unreachable at the following Open.
        torn = true;
        break;
      }
      HYP_ASSIGN_OR_RETURN(Message msg,
                           wire::DecodeMessage(frame.value().payload));
      const auto* entry = std::get_if<WriteSliceMsg>(&msg.payload);
      if (entry == nullptr) {
        return Status::InvalidArgument("write log '" +
                                       LogFilePath(dir, shard) +
                                       "' holds a non-write-slice frame");
      }
      entries_[entry->shard].emplace(entry->shard_version, *entry);
      pos += frame.value().consumed;
    }
    if (torn && ::truncate(LogFilePath(dir, shard).c_str(),
                           static_cast<off_t>(pos)) != 0) {
      return Status::IoError("cannot truncate torn write log '" +
                             LogFilePath(dir, shard) + "'");
    }
  }
  return Status::OK();
}

uint64_t ShardWriteLog::VersionOf(uint64_t shard) const {
  MutexLock lock(mu_);
  uint64_t version = 0;
  auto floor = floors_.find(shard);
  if (floor != floors_.end()) version = floor->second;
  auto it = entries_.find(shard);
  if (it != entries_.end() && !it->second.empty()) {
    version = std::max(version, it->second.rbegin()->first);
  }
  return version;
}

std::vector<std::pair<uint64_t, uint64_t>> ShardWriteLog::Versions() const {
  MutexLock lock(mu_);
  // Floors and entries both advertise a shard's version; a shard may
  // appear in either map alone, so merge rather than iterate one.
  std::map<uint64_t, uint64_t> merged(floors_);
  for (const auto& [shard, log] : entries_) {
    if (log.empty()) continue;
    uint64_t& v = merged[shard];
    v = std::max(v, log.rbegin()->first);
  }
  return {merged.begin(), merged.end()};
}

void ShardWriteLog::SetFloor(uint64_t shard, uint64_t version) {
  MutexLock lock(mu_);
  uint64_t& floor = floors_[shard];
  floor = std::max(floor, version);
}

Status ShardWriteLog::Append(const WriteSliceMsg& entry) {
  MutexLock lock(mu_);
  auto& log = entries_[entry.shard];
  uint64_t current = log.empty() ? 0 : log.rbegin()->first;
  auto floor = floors_.find(entry.shard);
  if (floor != floors_.end()) current = std::max(current, floor->second);
  // Monotonic only: a gap is legal (it holds sequences burned by failed
  // writes — each slice is full shard state, so nothing is lost), but a
  // replay at or below the current version would fork history.
  if (entry.shard_version <= current) {
    return Status::Internal(
        "write log append not monotonic: shard " +
        std::to_string(entry.shard) + " at version " +
        std::to_string(current) + ", entry is " +
        std::to_string(entry.shard_version));
  }
  if (!dir_.empty()) {
    // Durable before visible: a crash between the append and the map
    // insert replays the entry at the next Open, which is idempotent.
    Message msg;
    msg.payload = entry;
    std::string frame;
    wire::AppendFrame(wire::EncodeMessage(msg), 0, &frame);
    std::ofstream out(LogFilePath(dir_, entry.shard),
                      std::ios::binary | std::ios::app);
    if (!out || !out.write(frame.data(),
                           static_cast<std::streamsize>(frame.size()))
                     .flush()) {
      return Status::IoError("cannot append to write log '" +
                             LogFilePath(dir_, entry.shard) + "'");
    }
  }
  log.emplace(entry.shard_version, entry);
  return Status::OK();
}

Result<WriteSliceMsg> ShardWriteLog::EntryAt(uint64_t shard,
                                             uint64_t version) const {
  MutexLock lock(mu_);
  auto it = entries_.find(shard);
  if (it != entries_.end()) {
    auto entry = it->second.find(version);
    if (entry != it->second.end()) return entry->second;
  }
  return Status::NotFound("write log has no entry for shard " +
                          std::to_string(shard) + " version " +
                          std::to_string(version));
}

Result<WriteSliceMsg> ShardWriteLog::EntryAfter(uint64_t shard,
                                                uint64_t version) const {
  MutexLock lock(mu_);
  auto it = entries_.find(shard);
  if (it != entries_.end()) {
    auto entry = it->second.upper_bound(version);
    if (entry != it->second.end()) return entry->second;
  }
  return Status::NotFound("write log has no entry for shard " +
                          std::to_string(shard) + " above version " +
                          std::to_string(version));
}

// ---- ClusterTableSink ----------------------------------------------------

ClusterTableSink::ClusterTableSink(std::string self, Network* net,
                                   const PlacementState* placement,
                                   const MembershipTracker* membership,
                                   Options options)
    : self_(std::move(self)),
      net_(net),
      placement_(placement),
      membership_(membership),
      options_(options) {}

uint64_t ClusterTableSink::sequence() const {
  MutexLock lock(mu_);
  return write_seq_;
}

uint64_t ClusterTableSink::committed_sequence() const {
  MutexLock lock(mu_);
  return committed_seq_;
}

void ClusterTableSink::SendAttempt(Target* target, int64_t now_us) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_request_id_++;
    pending_.emplace(id, target->slot);
  }
  target->ids.push_back(id);
  ++target->attempts;
  target->in_flight = true;
  target->attempt_sent_us = now_us;
  reg.GetCounter("cluster.write.slices_sent")->Add();
  if (target->attempts > 1) {
    reg.GetCounter("cluster.write.retries")->Add();
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.write.retry";
    ev.detail = target->slice->table_name + "#" +
                std::to_string(target->shard) + " -> " + target->replica +
                " (attempt " + std::to_string(target->attempts) + ")";
    ev.value = static_cast<int64_t>(target->shard);
    obs::SessionTracer::Default().Record(std::move(ev));
  }
  Message msg;
  msg.from = self_;
  msg.to = target->replica;
  WriteSliceMsg ws = *target->slice;
  ws.request_id = id;
  msg.payload = std::move(ws);
  // mu_ is a leaf: the network's own lock is taken with it released.
  Status sent = net_->Send(std::move(msg));
  if (!sent.ok()) {
    // No route to the replica: spend the attempt, back off, retry.
    target->in_flight = false;
    if (target->attempts >= options_.attempts_per_replica) {
      target->spent = true;
    } else {
      target->send_gate_us =
          now_us + (options_.backoff_base_us << (target->attempts - 1));
    }
  }
}

Result<ClusterTableSink::WriteReport> ClusterTableSink::Apply(
    const MappingTable& table, uint64_t table_version) {
  // One writer at a time: a second caller queues here instead of
  // racing the first for a sequence number.
  MutexLock apply_lock(apply_mu_);
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  reg.GetCounter("cluster.write.requests")->Add();
  const int64_t t0 = SteadyNowUs();
  const int64_t deadline = t0 + options_.write_timeout_us;
  // One placement snapshot per write: a transition committing mid-Apply
  // does not reshuffle this write's targets (its slices carry the epoch
  // they were fanned out under, so receivers can tell).
  const PlacementState::Snapshot committed = placement_->Committed();
  const PlacementState::Snapshot pending = placement_->Pending();
  const ShardRing& ring = *committed.ring;
  const uint64_t shard_count = ring.shard_count();
  uint64_t seq, committed_floor;
  {
    // Reserve the sequence up front: if this write fails it is BURNED,
    // never reused — some replica may have applied it on a lost or
    // post-deadline ack, and a different write at the same sequence
    // would be swallowed there as a "duplicate" — permanent divergence
    // at identical versions.  The floor tells replicas
    // which gaps are safe to jump (burned) vs missing committed writes.
    MutexLock lock(mu_);
    seq = ++write_seq_;
    committed_floor = committed_seq_;
  }

  // One slice per shard, empty shards included: a write may delete a
  // shard's rows, and shipping every shard is what keeps all shard
  // versions in lockstep with the global write sequence.
  std::vector<uint64_t> all_shards;
  all_shards.reserve(shard_count);
  for (uint64_t s = 0; s < shard_count; ++s) all_shards.push_back(s);
  std::map<uint64_t, ShardSlice> slices = SliceTable(
      table, table_version,
      [&ring](const std::string& key) { return ring.ShardForKey(key); },
      all_shards);
  std::map<uint64_t, WriteSliceMsg> shard_msgs;
  for (auto& [shard, slice] : slices) {
    WriteSliceMsg ws;
    ws.origin = self_;
    ws.table_name = table.name();
    ws.shard = shard;
    ws.shard_version = seq;
    ws.committed_floor = committed_floor;
    ws.table_version = table_version;
    ws.total_rows = slice.total_rows;
    ws.x_schema = std::move(slice.x_schema);
    ws.y_schema = std::move(slice.y_schema);
    ws.row_indices = std::move(slice.row_indices);
    ws.rows = std::move(slice.rows);
    ws.ring_epoch = committed.epoch;
    shard_msgs.emplace(shard, std::move(ws));
  }

  // Every committed replica of every shard is a quorum-counted delivery
  // target; mid-transition, pending-only owners join the fan-out
  // best-effort (the union-write invariant: a write landed during a
  // rebalance reaches the new owners too, so no committed write is lost
  // when the epoch flips).
  std::vector<Target> targets;
  for (uint64_t s = 0; s < shard_count; ++s) {
    const std::vector<std::string>& owners = ring.OwnersForShard(s);
    for (const std::string& owner : owners) {
      Target t;
      t.shard = s;
      t.replica = owner;
      t.slice = &shard_msgs.at(s);
      t.slot = std::make_shared<Pending>();
      t.send_gate_us = t0;
      targets.push_back(std::move(t));
    }
    if (pending.ring == nullptr) continue;
    for (const std::string& owner : pending.ring->OwnersForShard(s)) {
      if (std::find(owners.begin(), owners.end(), owner) != owners.end()) {
        continue;  // already a committed target
      }
      Target t;
      t.shard = s;
      t.replica = owner;
      t.slice = &shard_msgs.at(s);
      t.slot = std::make_shared<Pending>();
      t.send_gate_us = t0;
      t.counted = false;
      targets.push_back(std::move(t));
    }
  }

  // Acks required per shard.  Re-evaluated every wake: with quorum 0
  // ("all alive") a replica that dies mid-write and transitions to down
  // stops being required — the write commits without it and anti-entropy
  // repairs it later.
  auto required_for = [&](uint64_t shard) -> size_t {
    const std::vector<std::string>& owners = ring.OwnersForShard(shard);
    if (options_.quorum > 0) {
      return std::min<size_t>(options_.quorum, owners.size());
    }
    size_t alive = 0;
    for (const std::string& owner : owners) {
      if (membership_ == nullptr ||
          membership_->StateOf(owner) != MemberState::kDown) {
        ++alive;
      }
    }
    return std::max<size_t>(1, alive);
  };

  auto erase_pending = [&]() {
    MutexLock lock(mu_);
    for (const Target& t : targets) {
      for (uint64_t id : t.ids) pending_.erase(id);
    }
  };
  auto unacked_of = [&](uint64_t shard) {
    std::string out;
    for (const Target& t : targets) {
      if (t.shard != shard || t.acked || !t.counted) continue;
      if (!out.empty()) out += ", ";
      out += "storage node '" + t.replica + "' unacked";
    }
    return out;
  };
  auto fail = [&](uint64_t shard, const std::string& why) -> Status {
    erase_pending();
    reg.GetCounter("cluster.write.failed")->Add();
    obs::TraceEvent ev;
    ev.peer = self_;
    ev.kind = "cluster.write.failed";
    ev.detail = table.name() + "#" + std::to_string(shard) + " " + why +
                ": " + unacked_of(shard) + " (seq " + std::to_string(seq) +
                " burned)";
    ev.value = static_cast<int64_t>(shard);
    obs::SessionTracer::Default().Record(std::move(ev));
    return Status::Unavailable("write seq " + std::to_string(seq) +
                               " of table '" + table.name() + "' shard " +
                               std::to_string(shard) + " " + why + ": " +
                               unacked_of(shard));
  };

  while (true) {
    int64_t now = SteadyNowUs();
    int64_t next_wake = deadline;
    std::vector<Target*> sends;
    {
      MutexLock lock(mu_);
      for (Target& t : targets) {
        if (t.acked || t.spent) continue;
        if (t.slot->done) {
          const WriteAckMsg& ack = t.slot->response;
          if (ack.applied != 0) {
            t.acked = true;
            t.in_flight = false;
            reg.GetCounter("cluster.write.acks")->Add();
            continue;
          }
          // The replica refused — stale (missing earlier writes) or a
          // storage-side error.  Retry with a fresh slot: anti-entropy
          // may catch it up between attempts.
          t.slot = std::make_shared<Pending>();
          t.in_flight = false;
          if (t.attempts >= options_.attempts_per_replica) {
            t.spent = true;
          } else {
            t.send_gate_us =
                now + (options_.backoff_base_us << (t.attempts - 1));
          }
          continue;
        }
        if (t.in_flight) {
          int64_t expiry = t.attempt_sent_us + options_.replica_timeout_us;
          if (now >= expiry) {
            t.in_flight = false;
            if (t.attempts >= options_.attempts_per_replica) {
              t.spent = true;
            } else {
              t.send_gate_us =
                  now + (options_.backoff_base_us << (t.attempts - 1));
            }
          } else {
            next_wake = std::min(next_wake, expiry);
          }
        }
        if (!t.in_flight && !t.spent) {
          if (now >= t.send_gate_us) {
            sends.push_back(&t);
          } else {
            next_wake = std::min(next_wake, t.send_gate_us);
          }
        }
      }
    }

    // Quorum check (acked/spent are Apply-thread-only state).  Only
    // committed owners count; pending-only targets never gate commit.
    bool all_quorate = true;
    for (uint64_t s = 0; s < shard_count; ++s) {
      size_t acked = 0, resolved = 0, total = 0;
      for (const Target& t : targets) {
        if (t.shard != s || !t.counted) continue;
        ++total;
        if (t.acked) ++acked;
        if (t.acked || t.spent) ++resolved;
      }
      size_t required = required_for(s);
      if (acked >= required) continue;
      all_quorate = false;
      if (resolved == total) {
        // Nothing left to wait for and still short of quorum.
        return fail(s, "failed: quorum " + std::to_string(required) +
                           " not met with " + std::to_string(acked) +
                           " acks");
      }
    }
    if (all_quorate) break;
    if (SteadyNowUs() >= deadline) {
      for (uint64_t s = 0; s < shard_count; ++s) {
        size_t acked = 0;
        for (const Target& t : targets) {
          if (t.shard == s && t.counted && t.acked) ++acked;
        }
        if (acked < required_for(s)) {
          return fail(s, "timed out after " +
                             std::to_string(options_.write_timeout_us / 1000) +
                             "ms");
        }
      }
    }
    if (!sends.empty()) {
      for (Target* t : sends) SendAttempt(t, now);
      continue;  // recompute deadlines around the new attempts
    }
    MutexLock lock(mu_);
    cv_.WaitFor(mu_, std::chrono::microseconds(
                         std::max<int64_t>(next_wake - now, 1000)));
  }
  erase_pending();

  WriteReport report;
  report.sequence = seq;
  report.table_version = table_version;
  std::set<std::string> lagging;
  for (const Target& t : targets) {
    // Pending-only targets are invisible in the report: their catch-up
    // is the handoff protocol's job, not anti-entropy's.
    if (!t.counted) continue;
    if (t.acked) {
      ++report.acks;
    } else {
      lagging.insert(t.replica);
    }
  }
  report.lagging.assign(lagging.begin(), lagging.end());
  {
    // write_seq_ already advanced at entry; only the commit point moves.
    MutexLock lock(mu_);
    committed_seq_ = seq;
  }

  int64_t elapsed_us = SteadyNowUs() - t0;
  reg.GetCounter("cluster.write.committed")->Add();
  reg.GetHistogram("cluster.write.latency_us", obs::LatencyBoundsUs())
      ->Observe(elapsed_us);
  obs::TraceEvent ev;
  ev.peer = self_;
  ev.kind = "cluster.write.committed";
  ev.detail = table.name() + "@v" + std::to_string(table_version) + " seq " +
              std::to_string(seq) + " acks " + std::to_string(report.acks) +
              (report.lagging.empty()
                   ? ""
                   : " lagging " + std::to_string(report.lagging.size()));
  ev.value = static_cast<int64_t>(seq);
  obs::SessionTracer::Default().Record(std::move(ev));
  return report;
}

void ClusterTableSink::OnWriteAck(const WriteAckMsg& msg) {
  MutexLock lock(mu_);
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) return;  // write already finished or failed
  if (it->second->done) return;      // an earlier attempt's ack won
  it->second->response = msg;
  it->second->done = true;
  cv_.NotifyAll();
}

}  // namespace cluster
}  // namespace hyperion
