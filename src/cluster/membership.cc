#include "cluster/membership.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperion {
namespace cluster {

const char* MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kUnknown:
      return "unknown";
    case MemberState::kAlive:
      return "alive";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kDown:
      return "down";
  }
  return "?";
}

MembershipTracker::MembershipTracker(std::string self,
                                     std::vector<std::string> members,
                                     int64_t suspect_after_us,
                                     int64_t down_after_us)
    : self_(std::move(self)),
      suspect_after_us_(suspect_after_us),
      down_after_us_(down_after_us) {
  // Instrument handles are resolved once here: Counter::Add is atomic,
  // so TransitionLocked can bump them under mu_ without ever touching
  // the registry's own mutex (mu_ stays a leaf, DESIGN.md §12).
  obs::MetricRegistry& reg = obs::MetricRegistry::Default();
  m_heartbeats_ = reg.GetCounter("cluster.heartbeats_received");
  m_alive_ = reg.GetCounter("cluster.alive_transitions");
  m_suspect_ = reg.GetCounter("cluster.suspect_transitions");
  m_down_ = reg.GetCounter("cluster.down_transitions");
  m_members_alive_ = reg.GetGauge("cluster.members_alive");
  MutexLock lock(mu_);
  for (std::string& m : members) {
    members_.emplace(std::move(m), Entry{});
  }
}

void MembershipTracker::TransitionLocked(const std::string& node, Entry& entry,
                                         MemberState next, int64_t now_us,
                                         std::vector<obs::TraceEvent>* out) {
  if (entry.state == next) return;
  entry.state = next;
  const char* kind = nullptr;
  switch (next) {
    case MemberState::kAlive:
      m_alive_->Add();
      kind = "cluster.member_alive";
      break;
    case MemberState::kSuspect:
      m_suspect_->Add();
      kind = "cluster.member_suspect";
      break;
    case MemberState::kDown:
      m_down_->Add();
      kind = "cluster.member_down";
      break;
    case MemberState::kUnknown:
      break;  // never transitioned back to
  }
  int64_t alive = 0;
  for (const auto& [id, e] : members_) {
    if (e.state == MemberState::kAlive) ++alive;
  }
  m_members_alive_->Set(alive);
  if (kind != nullptr) {
    obs::TraceEvent ev;
    ev.wall_us = now_us;
    ev.peer = self_;
    ev.kind = kind;
    ev.detail = node;
    ev.value = alive;
    out->push_back(std::move(ev));
  }
}

void MembershipTracker::Observe(const std::string& node, int64_t now_us) {
  std::vector<obs::TraceEvent> events;
  {
    MutexLock lock(mu_);
    auto it = members_.find(node);
    if (it == members_.end()) return;  // not on the roster
    it->second.last_heard_us = now_us;
    ++it->second.beats;
    m_heartbeats_->Add();
    TransitionLocked(node, it->second, MemberState::kAlive, now_us, &events);
  }
  // The tracer has its own (leaf) lock; record with mu_ released.
  for (obs::TraceEvent& ev : events) {
    obs::SessionTracer::Default().Record(std::move(ev));
  }
}

std::vector<MemberInfo> MembershipTracker::SweepAt(int64_t now_us) {
  std::vector<obs::TraceEvent> events;
  std::vector<MemberInfo> changed;
  {
    MutexLock lock(mu_);
    for (auto& [node, entry] : members_) {
      if (entry.state != MemberState::kAlive &&
          entry.state != MemberState::kSuspect) {
        continue;  // unknown members have no deadline; down stays down
      }
      int64_t silence = now_us - entry.last_heard_us;
      MemberState next = entry.state;
      if (silence > down_after_us_) {
        next = MemberState::kDown;
      } else if (silence > suspect_after_us_) {
        next = MemberState::kSuspect;
      }
      if (next != entry.state) {
        TransitionLocked(node, entry, next, now_us, &events);
        changed.push_back(MemberInfo{node, entry.state, entry.last_heard_us,
                                     entry.beats});
      }
    }
  }
  for (obs::TraceEvent& ev : events) {
    obs::SessionTracer::Default().Record(std::move(ev));
  }
  return changed;
}

MemberState MembershipTracker::StateOf(const std::string& node) const {
  MutexLock lock(mu_);
  auto it = members_.find(node);
  return it == members_.end() ? MemberState::kUnknown : it->second.state;
}

std::vector<MemberInfo> MembershipTracker::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MemberInfo> out;
  out.reserve(members_.size());
  for (const auto& [node, entry] : members_) {
    out.push_back(
        MemberInfo{node, entry.state, entry.last_heard_us, entry.beats});
  }
  return out;
}

bool MembershipTracker::AllAlive() const {
  MutexLock lock(mu_);
  return std::all_of(members_.begin(), members_.end(), [](const auto& kv) {
    return kv.second.state == MemberState::kAlive;
  });
}

void MembershipTracker::AddMember(const std::string& node) {
  MutexLock lock(mu_);
  members_.emplace(node, Entry{});  // no-op when already tracked
}

void MembershipTracker::RemoveMember(const std::string& node) {
  MutexLock lock(mu_);
  if (members_.erase(node) == 0) return;
  int64_t alive = 0;
  for (const auto& [id, e] : members_) {
    if (e.state == MemberState::kAlive) ++alive;
  }
  m_members_alive_->Set(alive);
}

bool MembershipTracker::Contains(const std::string& node) const {
  MutexLock lock(mu_);
  return members_.find(node) != members_.end();
}

}  // namespace cluster
}  // namespace hyperion
