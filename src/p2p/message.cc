#include "p2p/message.h"

namespace hyperion {

namespace {

constexpr size_t kEnvelopeOverhead = 48;  // ids, type tag, lengths

size_t EstimateSchemaBytes(const Schema& s) {
  size_t bytes = 4;
  for (const Attribute& a : s.attrs()) bytes += a.name().size() + 2;
  return bytes;
}

size_t EstimateValueBytes(const Value& v) {
  return v.is_string() ? v.AsString().size() + 1 : 8;
}

size_t EstimateSummaryBytes(const PartitionSummary& p) {
  size_t bytes = 16;
  for (const PartitionMemberRef& m : p.members) {
    bytes += m.table_name.size() + 6;
    for (const std::string& n : m.attr_names) bytes += n.size() + 2;
  }
  for (const std::string& n : p.attr_names) bytes += n.size() + 2;
  return bytes;
}

size_t EstimateSpecBytes(const SessionSpec& spec) {
  size_t bytes = 16;
  for (const std::string& p : spec.path_peers) bytes += p.size() + 2;
  for (const std::string& n : spec.x_names) bytes += n.size() + 2;
  for (const std::string& n : spec.y_names) bytes += n.size() + 2;
  return bytes;
}

size_t EstimateWriteSliceBytes(const WriteSliceMsg& ws) {
  size_t bytes = 65 + ws.origin.size() + ws.table_name.size() +
                 ws.error.size() + EstimateSchemaBytes(ws.x_schema) +
                 EstimateSchemaBytes(ws.y_schema) + 8 * ws.row_indices.size();
  for (const Mapping& m : ws.rows) bytes += EstimateMappingBytes(m);
  return bytes;
}

}  // namespace

size_t EstimateMappingBytes(const Mapping& m) {
  size_t bytes = 2;
  for (const Cell& c : m.cells()) {
    if (c.is_constant()) {
      bytes += 1 + EstimateValueBytes(c.value());
    } else {
      bytes += 5;  // tag + var id
      for (const Value& v : c.exclusions()) bytes += EstimateValueBytes(v);
    }
  }
  return bytes;
}

size_t Message::ByteSize() const {
  size_t bytes = kEnvelopeOverhead + from.size() + to.size();
  if (const auto* ping = std::get_if<PingMsg>(&payload)) {
    bytes += 16 + ping->origin.size();
  } else if (const auto* pong = std::get_if<PongMsg>(&payload)) {
    bytes += 16 + pong->responder.size();
  } else if (const auto* init = std::get_if<SessionInitMsg>(&payload)) {
    bytes += EstimateSpecBytes(init->spec);
    for (const PartitionSummary& p : init->partitions) {
      bytes += EstimateSummaryBytes(p);
    }
    for (const auto& [attr, filter] : init->forward_filters) {
      bytes += attr.size() + filter.ByteSize();
    }
  } else if (const auto* plan = std::get_if<ComputePlanMsg>(&payload)) {
    bytes += EstimateSpecBytes(plan->spec);
    for (const PartitionSummary& p : plan->partitions) {
      bytes += EstimateSummaryBytes(p);
    }
  } else if (const auto* batch = std::get_if<CoverBatchMsg>(&payload)) {
    bytes += 16 + EstimateSchemaBytes(batch->schema);
    for (const Mapping& m : batch->rows) bytes += EstimateMappingBytes(m);
  } else if (const auto* final_rows = std::get_if<FinalRowsMsg>(&payload)) {
    bytes += 22 + EstimateSchemaBytes(final_rows->schema) +
             final_rows->error.size();
    for (const Mapping& m : final_rows->rows) {
      bytes += EstimateMappingBytes(m);
    }
  } else if (const auto* search = std::get_if<SearchMsg>(&payload)) {
    bytes += 24 + search->origin.size();
    for (const std::string& a : search->query.attrs) bytes += a.size() + 2;
    for (const Tuple& k : search->query.keys) {
      for (const Value& v : k) bytes += EstimateValueBytes(v);
    }
  } else if (const auto* hit = std::get_if<SearchHitMsg>(&payload)) {
    bytes += 16 + hit->responder.size() + EstimateSchemaBytes(hit->schema);
    for (const Tuple& t : hit->tuples) {
      for (const Value& v : t) bytes += EstimateValueBytes(v);
    }
  } else if (std::get_if<AckMsg>(&payload)) {
    bytes += 25;  // session + kind + partition + seq
  } else if (const auto* hb = std::get_if<HeartbeatMsg>(&payload)) {
    bytes += 33 + hb->node.size() + hb->listen_addr.size() +
             16 * hb->shards.size();
    for (const std::string& n : hb->ring_nodes) bytes += n.size() + 4;
    for (const std::string& n : hb->pending_nodes) bytes += n.size() + 4;
    for (const std::string& n : hb->peer_nodes) bytes += n.size() + 4;
    for (const std::string& n : hb->peer_addrs) bytes += n.size() + 4;
  } else if (const auto* fetch = std::get_if<ShardFetchMsg>(&payload)) {
    bytes += 24 + fetch->table_name.size();
  } else if (const auto* slice = std::get_if<ShardRowsMsg>(&payload)) {
    bytes += 44 + slice->table_name.size() + slice->node.size() +
             slice->error.size() + EstimateSchemaBytes(slice->x_schema) +
             EstimateSchemaBytes(slice->y_schema) +
             8 * slice->row_indices.size();
    for (const Mapping& m : slice->rows) bytes += EstimateMappingBytes(m);
  } else if (const auto* ws = std::get_if<WriteSliceMsg>(&payload)) {
    bytes += EstimateWriteSliceBytes(*ws);
  } else if (const auto* wa = std::get_if<WriteAckMsg>(&payload)) {
    bytes += 37 + wa->node.size() + wa->error.size();
  } else if (const auto* rf = std::get_if<RepairFetchMsg>(&payload)) {
    bytes += 32 + rf->node.size();
  } else if (const auto* hf = std::get_if<HandoffFetchMsg>(&payload)) {
    bytes += 24 + hf->node.size();
  } else if (const auto* hr = std::get_if<HandoffRowsMsg>(&payload)) {
    bytes += 28 + hr->node.size() + hr->error.size();
    for (const WriteSliceMsg& s : hr->slices) {
      bytes += EstimateWriteSliceBytes(s);
    }
  } else if (const auto* ha = std::get_if<HandoffAckMsg>(&payload)) {
    bytes += 40 + ha->node.size();
  }
  return bytes;
}

const char* Message::TypeName() const {
  switch (payload.index()) {
    case 0:
      return "Ping";
    case 1:
      return "Pong";
    case 2:
      return "SessionInit";
    case 3:
      return "ComputePlan";
    case 4:
      return "CoverBatch";
    case 5:
      return "FinalRows";
    case 6:
      return "Search";
    case 7:
      return "SearchHit";
    case 8:
      return "Ack";
    case 9:
      return "Heartbeat";
    case 10:
      return "ShardFetch";
    case 11:
      return "ShardRows";
    case 12:
      return "WriteSlice";
    case 13:
      return "WriteAck";
    case 14:
      return "RepairFetch";
    case 15:
      return "HandoffFetch";
    case 16:
      return "HandoffRows";
    case 17:
      return "HandoffAck";
  }
  return "Unknown";
}

}  // namespace hyperion
