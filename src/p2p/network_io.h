// Persistence for whole peer networks: a directory with one manifest,
// one .hmt file per mapping table and one .csv per data relation, so a
// deployment can be saved, shipped and reloaded (or hand-edited with the
// CLI and a text editor).
//
// Layout:
//   network.manifest       one "peer"/"attrs"/"data"/"constraint" block
//                          per peer (see network_io.cc for the grammar)
//   <peer>__<table>.hmt    mapping tables (mapping_table.cc text format)
//   <peer>__data<i>.csv    data relations
//
// Domains round-trip as string/int; enumerated domains are not
// serializable (they exist for test oracles).

#ifndef HYPERION_P2P_NETWORK_IO_H_
#define HYPERION_P2P_NETWORK_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "p2p/peer.h"

namespace hyperion {

/// \brief Writes the peers' attributes, constraints and data relations
/// under `directory` (created if missing; existing files overwritten).
Status SaveNetwork(const std::vector<const PeerNode*>& peers,
                   const std::string& directory);

/// \brief Reconstructs the peers saved by SaveNetwork.  The peers are
/// fresh and unattached; wire them to a network with Attach().
Result<std::vector<std::unique_ptr<PeerNode>>> LoadNetwork(
    const std::string& directory);

}  // namespace hyperion

#endif  // HYPERION_P2P_NETWORK_IO_H_
