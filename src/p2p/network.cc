#include "p2p/network.h"

#include <chrono>

#include "obs/metrics.h"

namespace hyperion {

namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void RecordNetworkSend(const char* network_kind, const Message& msg,
                       size_t bytes) {
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    obs::LabelSet labels{{"type", msg.TypeName()},
                         {"network", network_kind}};
    reg.GetCounter("net.messages_sent", labels)->Add(1);
    reg.GetCounter("net.bytes_sent", std::move(labels))->Add(bytes);
  }
}

SimNetwork::SimNetwork() : options_(Options()) {}

Status SimNetwork::RegisterPeer(const std::string& id, Handler handler) {
  if (id.empty()) {
    return Status::InvalidArgument("peer id must be nonempty");
  }
  auto [it, inserted] = peers_.emplace(id, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer '" + id + "' already registered");
  }
  busy_until_[id] = 0;
  return Status::OK();
}

int64_t SimNetwork::CurrentComputeMicros() const {
  int64_t measured_us =
      (WallNowNs() - handler_wall_start_ns_) / 1000;
  return static_cast<int64_t>(
             static_cast<double>(measured_us) * options_.compute_scale) +
         handler_extra_charge_us_;
}

int64_t SimNetwork::now_us() const {
  if (in_handler_) return handler_start_us_ + CurrentComputeMicros();
  return clock_us_;
}

void SimNetwork::ChargeCompute(int64_t micros) {
  if (in_handler_) handler_extra_charge_us_ += micros;
}

void SimNetwork::SetFaultPlan(FaultPlan plan) {
  faults_.SetPlan(std::move(plan));
}

Status SimNetwork::Send(Message msg) {
  if (!peers_.count(msg.to)) {
    return Status::NotFound("unknown destination peer '" + msg.to + "'");
  }
  size_t bytes = msg.ByteSize();
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  stats_.messages_by_type[msg.TypeName()] += 1;
  RecordNetworkSend("sim", msg, bytes);

  int64_t depart = now_us();
  FaultInjector::SendDecision decision =
      faults_.OnSend(msg.from, msg.to, depart);
  if (decision.dropped) {
    stats_.drops_injected += 1;
    RecordFaultEvent("net.drops_injected", "sim");
    return Status::OK();  // the sender cannot tell — that is the point
  }
  if (decision.copy_jitter_us.size() > 1) {
    stats_.duplicates_injected += decision.copy_jitter_us.size() - 1;
    RecordFaultEvent("net.duplicates_injected", "sim");
  }

  int64_t latency = options_.latency_us;
  auto link_it = options_.link_latency_us.find({msg.from, msg.to});
  if (link_it != options_.link_latency_us.end()) latency = link_it->second;
  int64_t base_arrival =
      depart + latency +
      static_cast<int64_t>(static_cast<double>(bytes) * options_.us_per_byte);
  const size_t copies = decision.copy_jitter_us.size();
  for (size_t i = 0; i < copies; ++i) {
    int64_t arrival = base_arrival + decision.copy_jitter_us[i];
    if (!faults_.active()) {
      // Keep per-link FIFO order in the fault-free simulation; fault
      // jitter exists precisely to break it.
      auto link = std::make_pair(msg.from, msg.to);
      auto it = last_arrival_.find(link);
      if (it != last_arrival_.end() && arrival <= it->second) {
        arrival = it->second + 1;
      }
      last_arrival_[link] = arrival;
    }
    Event ev;
    ev.time = arrival;
    ev.seq = next_seq_++;
    ev.depart = depart;
    ev.msg = (i + 1 == copies) ? std::move(msg) : msg;
    queue_.push(std::move(ev));
  }
  return Status::OK();
}

Result<Network::TimerId> SimNetwork::ScheduleTimer(const std::string& peer,
                                                   int64_t delay_us,
                                                   TimerCallback cb) {
  if (!peers_.count(peer)) {
    return Status::NotFound("unknown timer peer '" + peer + "'");
  }
  if (delay_us < 0) {
    return Status::InvalidArgument("timer delay must be >= 0");
  }
  Event ev;
  ev.time = now_us() + delay_us;
  ev.seq = next_seq_++;
  ev.depart = ev.time;
  ev.timer_id = next_timer_id_++;
  ev.timer_peer = peer;
  ev.timer_cb = std::move(cb);
  TimerId id = ev.timer_id;
  queue_.push(std::move(ev));
  return id;
}

void SimNetwork::CancelTimer(TimerId id) {
  if (id != 0) cancelled_timers_.insert(id);
}

template <typename Body>
void SimNetwork::RunOnPeer(const std::string& peer, int64_t start,
                           int64_t initial_charge_us, Body&& body) {
  clock_us_ = start;
  in_handler_ = true;
  current_peer_ = peer;
  handler_start_us_ = start;
  handler_wall_start_ns_ = WallNowNs();
  handler_extra_charge_us_ = initial_charge_us;

  body();

  int64_t consumed = CurrentComputeMicros();
  in_handler_ = false;
  busy_until_[peer] = start + consumed;
  clock_us_ = std::max(clock_us_, start + consumed);
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry::Default()
        .GetHistogram("sim.handler_us", obs::LatencyBoundsUs())
        ->Observe(consumed);
  }
}

Result<int64_t> SimNetwork::Run() {
  [[maybe_unused]] obs::Histogram* delivery_us = nullptr;
  [[maybe_unused]] obs::Histogram* queue_depth = nullptr;
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    delivery_us = reg.GetHistogram("sim.delivery_latency_us",
                                   obs::LatencyBoundsUs());
    queue_depth = reg.GetHistogram("sim.queue_depth", obs::SizeBounds());
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.timer_id != 0) {
      // Cancelled timers drain without advancing the clock or touching
      // the peer's timeline.
      auto cancelled = cancelled_timers_.find(ev.timer_id);
      if (cancelled != cancelled_timers_.end()) {
        cancelled_timers_.erase(cancelled);
        continue;
      }
      if (faults_.PeerDownAt(ev.timer_peer, ev.time)) {
        stats_.crash_discards += 1;
        RecordFaultEvent("net.crash_discards", "sim");
        continue;
      }
      int64_t start = std::max(ev.time, busy_until_[ev.timer_peer]);
      stats_.timers_fired += 1;
      // Timers model local clock expiry: no message was received, so no
      // per-message processing overhead is charged.
      RunOnPeer(ev.timer_peer, start, 0, [&] { ev.timer_cb(); });
      continue;
    }
    if constexpr (obs::kMetricsEnabled) {
      queue_depth->Observe(static_cast<int64_t>(queue_.size()) + 1);
    }
    auto peer_it = peers_.find(ev.msg.to);
    if (peer_it == peers_.end()) {
      return Status::Internal("event for unknown peer '" + ev.msg.to + "'");
    }
    if (faults_.PeerDownAt(ev.msg.to, ev.time)) {
      stats_.crash_discards += 1;
      RecordFaultEvent("net.crash_discards", "sim");
      continue;
    }
    int64_t start = std::max(ev.time, busy_until_[ev.msg.to]);
    if constexpr (obs::kMetricsEnabled) {
      // Virtual time from send to processing start: models what the
      // paper's distributed deployment would observe per hop.
      delivery_us->Observe(start - ev.depart);
    }
    RunOnPeer(ev.msg.to, start, options_.per_message_overhead_us,
              [&] { peer_it->second(ev.msg); });
  }
  return clock_us_;
}

}  // namespace hyperion
