#include "p2p/network.h"

#include <chrono>

#include "obs/metrics.h"

namespace hyperion {

namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void RecordNetworkSend(const char* network_kind, const Message& msg,
                       size_t bytes) {
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    obs::LabelSet labels{{"type", msg.TypeName()},
                         {"network", network_kind}};
    reg.GetCounter("net.messages_sent", labels)->Add(1);
    reg.GetCounter("net.bytes_sent", std::move(labels))->Add(bytes);
  }
}

SimNetwork::SimNetwork() : options_(Options()) {}

Status SimNetwork::RegisterPeer(const std::string& id, Handler handler) {
  if (id.empty()) {
    return Status::InvalidArgument("peer id must be nonempty");
  }
  auto [it, inserted] = peers_.emplace(id, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer '" + id + "' already registered");
  }
  busy_until_[id] = 0;
  return Status::OK();
}

int64_t SimNetwork::CurrentComputeMicros() const {
  int64_t measured_us =
      (WallNowNs() - handler_wall_start_ns_) / 1000;
  return static_cast<int64_t>(
             static_cast<double>(measured_us) * options_.compute_scale) +
         handler_extra_charge_us_;
}

int64_t SimNetwork::now_us() const {
  if (in_handler_) return handler_start_us_ + CurrentComputeMicros();
  return clock_us_;
}

void SimNetwork::ChargeCompute(int64_t micros) {
  if (in_handler_) handler_extra_charge_us_ += micros;
}

Status SimNetwork::Send(Message msg) {
  if (!peers_.count(msg.to)) {
    return Status::NotFound("unknown destination peer '" + msg.to + "'");
  }
  size_t bytes = msg.ByteSize();
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  stats_.messages_by_type[msg.TypeName()] += 1;
  RecordNetworkSend("sim", msg, bytes);

  int64_t depart = now_us();
  int64_t latency = options_.latency_us;
  auto link_it = options_.link_latency_us.find({msg.from, msg.to});
  if (link_it != options_.link_latency_us.end()) latency = link_it->second;
  int64_t arrival =
      depart + latency +
      static_cast<int64_t>(static_cast<double>(bytes) * options_.us_per_byte);
  // Keep per-link FIFO order.
  auto link = std::make_pair(msg.from, msg.to);
  auto it = last_arrival_.find(link);
  if (it != last_arrival_.end() && arrival <= it->second) {
    arrival = it->second + 1;
  }
  last_arrival_[link] = arrival;
  queue_.push(Event{arrival, next_seq_++, depart, std::move(msg)});
  return Status::OK();
}

Result<int64_t> SimNetwork::Run() {
  [[maybe_unused]] obs::Histogram* delivery_us = nullptr;
  [[maybe_unused]] obs::Histogram* queue_depth = nullptr;
  [[maybe_unused]] obs::Histogram* handler_us = nullptr;
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    delivery_us = reg.GetHistogram("sim.delivery_latency_us",
                                   obs::LatencyBoundsUs());
    queue_depth = reg.GetHistogram("sim.queue_depth", obs::SizeBounds());
    handler_us = reg.GetHistogram("sim.handler_us", obs::LatencyBoundsUs());
  }
  while (!queue_.empty()) {
    if constexpr (obs::kMetricsEnabled) {
      queue_depth->Observe(static_cast<int64_t>(queue_.size()));
    }
    Event ev = queue_.top();
    queue_.pop();
    auto peer_it = peers_.find(ev.msg.to);
    if (peer_it == peers_.end()) {
      return Status::Internal("event for unknown peer '" + ev.msg.to + "'");
    }
    int64_t start = std::max(ev.time, busy_until_[ev.msg.to]);
    if constexpr (obs::kMetricsEnabled) {
      // Virtual time from send to processing start: models what the
      // paper's distributed deployment would observe per hop.
      delivery_us->Observe(start - ev.depart);
    }
    clock_us_ = start;
    in_handler_ = true;
    current_peer_ = ev.msg.to;
    handler_start_us_ = start;
    handler_wall_start_ns_ = WallNowNs();
    handler_extra_charge_us_ = options_.per_message_overhead_us;

    peer_it->second(ev.msg);

    int64_t consumed = CurrentComputeMicros();
    in_handler_ = false;
    busy_until_[ev.msg.to] = start + consumed;
    clock_us_ = std::max(clock_us_, start + consumed);
    if constexpr (obs::kMetricsEnabled) {
      handler_us->Observe(consumed);
    }
  }
  return clock_us_;
}

}  // namespace hyperion
