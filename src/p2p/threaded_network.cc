#include "p2p/threaded_network.h"

#include <chrono>

#include "obs/metrics.h"

namespace hyperion {

ThreadedNetwork::~ThreadedNetwork() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& [id, worker] : peers_) {
      (void)id;
      worker->cv.notify_all();
    }
  }
  for (auto& [id, worker] : peers_) {
    (void)id;
    if (worker->thread.joinable()) worker->thread.join();
  }
}

Status ThreadedNetwork::RegisterPeer(const std::string& id, Handler handler) {
  if (id.empty()) {
    return Status::InvalidArgument("peer id must be nonempty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return Status::FailedPrecondition(
        "cannot register peers while the network is running");
  }
  auto worker = std::make_unique<PeerWorker>();
  worker->handler = std::move(handler);
  auto [it, inserted] = peers_.emplace(id, std::move(worker));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer '" + id + "' already registered");
  }
  return Status::OK();
}

Status ThreadedNetwork::Send(Message msg) {
  size_t bytes = msg.ByteSize();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = peers_.find(msg.to);
  if (it == peers_.end()) {
    return Status::NotFound("unknown destination peer '" + msg.to + "'");
  }
  RecordNetworkSend("threaded", msg, bytes);
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  stats_.messages_by_type[msg.TypeName()] += 1;
  ++outstanding_;
  it->second->queue.push_back(QueuedMessage{std::move(msg), now_us()});
  it->second->cv.notify_one();
  return Status::OK();
}

void ThreadedNetwork::WorkerLoop(PeerWorker* worker) {
  [[maybe_unused]] obs::Histogram* queue_wait_us = nullptr;
  [[maybe_unused]] obs::Histogram* queue_depth = nullptr;
  [[maybe_unused]] obs::Histogram* handler_us = nullptr;
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    queue_wait_us = reg.GetHistogram("threaded.queue_wait_us",
                                     obs::LatencyBoundsUs());
    queue_depth = reg.GetHistogram("threaded.queue_depth",
                                   obs::SizeBounds());
    handler_us = reg.GetHistogram("threaded.handler_us",
                                  obs::LatencyBoundsUs());
  }
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    worker->cv.wait(lock, [&] {
      return stopping_ || !worker->queue.empty();
    });
    if (worker->queue.empty()) {
      if (stopping_) return;
      continue;
    }
    if constexpr (obs::kMetricsEnabled) {
      queue_depth->Observe(static_cast<int64_t>(worker->queue.size()));
    }
    QueuedMessage queued = std::move(worker->queue.front());
    worker->queue.pop_front();
    lock.unlock();
    int64_t start_us = now_us();
    if constexpr (obs::kMetricsEnabled) {
      queue_wait_us->Observe(start_us - queued.enqueued_us);
    }
    worker->handler(queued.msg);  // may Send(), re-locking mutex_
    if constexpr (obs::kMetricsEnabled) {
      handler_us->Observe(now_us() - start_us);
    }
    lock.lock();
    if (--outstanding_ == 0) quiescent_cv_.notify_all();
  }
}

Result<int64_t> ThreadedNetwork::Run() {
  auto start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition("Run() is not reentrant");
    }
    running_ = true;
    stopping_ = false;
  }
  for (auto& [id, worker] : peers_) {
    (void)id;
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    quiescent_cv_.wait(lock, [&] { return outstanding_ == 0; });
    stopping_ = true;
    for (auto& [id, worker] : peers_) {
      (void)id;
      worker->cv.notify_all();
    }
  }
  for (auto& [id, worker] : peers_) {
    (void)id;
    worker->thread.join();
    worker->thread = std::thread();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t ThreadedNetwork::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

NetworkStats ThreadedNetwork::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ThreadedNetwork::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = NetworkStats();
}

}  // namespace hyperion
