#include "p2p/threaded_network.h"

#include <chrono>

#include "obs/metrics.h"

namespace hyperion {

ThreadedNetwork::~ThreadedNetwork() {
  std::vector<PeerWorker*> workers;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    for (auto& [id, worker] : peers_) {
      (void)id;
      worker->cv.NotifyAll();
      workers.push_back(worker.get());
    }
    scheduler_cv_.NotifyAll();
  }
  // Join outside the lock (the exiting threads re-acquire mutex_ on
  // their way out); the PeerWorker allocations are stable and no other
  // thread mutates peers_ during destruction.
  for (PeerWorker* worker : workers) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (scheduler_.joinable()) scheduler_.join();
}

Status ThreadedNetwork::RegisterPeer(const std::string& id, Handler handler) {
  if (id.empty()) {
    return Status::InvalidArgument("peer id must be nonempty");
  }
  MutexLock lock(mutex_);
  if (running_) {
    return Status::FailedPrecondition(
        "cannot register peers while the network is running");
  }
  auto worker = std::make_unique<PeerWorker>();
  worker->id = id;
  worker->handler = std::move(handler);
  auto [it, inserted] = peers_.emplace(id, std::move(worker));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer '" + id + "' already registered");
  }
  return Status::OK();
}

void ThreadedNetwork::SetFaultPlan(FaultPlan plan) {
  MutexLock lock(mutex_);
  faults_.SetPlan(std::move(plan));
}

void ThreadedNetwork::DecrementOutstanding() {
  if (--outstanding_ == 0) quiescent_cv_.NotifyAll();
}

Status ThreadedNetwork::Send(Message msg) {
  size_t bytes = msg.ByteSize();
  MutexLock lock(mutex_);
  auto it = peers_.find(msg.to);
  if (it == peers_.end()) {
    return Status::NotFound("unknown destination peer '" + msg.to + "'");
  }
  RecordNetworkSend("threaded", msg, bytes);
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  stats_.messages_by_type[msg.TypeName()] += 1;

  FaultInjector::SendDecision decision =
      faults_.OnSend(msg.from, msg.to, now_us());
  if (decision.dropped) {
    stats_.drops_injected += 1;
    RecordFaultEvent("net.drops_injected", "threaded");
    return Status::OK();
  }
  const size_t copies = decision.copy_jitter_us.size();
  if (copies > 1) {
    stats_.duplicates_injected += copies - 1;
    RecordFaultEvent("net.duplicates_injected", "threaded");
  }
  for (size_t i = 0; i < copies; ++i) {
    Message copy = (i + 1 == copies) ? std::move(msg) : msg;
    int64_t jitter = decision.copy_jitter_us[i];
    ++outstanding_;
    if (jitter > 0) {
      // Delayed copies ride the scheduler, then rejoin the worker queue.
      PendingEntry entry;
      entry.peer = copy.to;
      entry.msg = std::move(copy);
      entry.is_message = true;
      pending_.emplace(now_us() + jitter, std::move(entry));
      scheduler_cv_.NotifyAll();
    } else {
      QueuedMessage queued;
      queued.msg = std::move(copy);
      queued.enqueued_us = now_us();
      it->second->queue.push_back(std::move(queued));
      it->second->cv.NotifyOne();
    }
  }
  return Status::OK();
}

Result<Network::TimerId> ThreadedNetwork::ScheduleTimer(
    const std::string& peer, int64_t delay_us, TimerCallback cb) {
  MutexLock lock(mutex_);
  if (!peers_.count(peer)) {
    return Status::NotFound("unknown timer peer '" + peer + "'");
  }
  if (delay_us < 0) {
    return Status::InvalidArgument("timer delay must be >= 0");
  }
  PendingEntry entry;
  entry.id = next_timer_id_++;
  entry.peer = peer;
  entry.cb = std::move(cb);
  TimerId id = entry.id;
  live_timers_.insert(id);
  ++outstanding_;
  pending_.emplace(now_us() + delay_us, std::move(entry));
  scheduler_cv_.NotifyAll();
  return id;
}

void ThreadedNetwork::CancelTimer(TimerId id) {
  if (id == 0) return;
  MutexLock lock(mutex_);
  if (!live_timers_.count(id)) return;  // already ran (or never existed)
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->second.id == id) {
      pending_.erase(it);
      live_timers_.erase(id);
      DecrementOutstanding();
      return;
    }
  }
  // Already moved to a worker queue: mark it so the worker skips the
  // callback when it gets there.
  cancelled_timers_.insert(id);
}

void ThreadedNetwork::SchedulerLoop() {
  MutexLock lock(mutex_);
  while (true) {
    if (stopping_) return;
    if (pending_.empty()) {
      scheduler_cv_.Wait(mutex_, [this]() REQUIRES(mutex_) {
        return stopping_ || !pending_.empty();
      });
      continue;
    }
    int64_t due = pending_.begin()->first;
    if (now_us() < due) {
      scheduler_cv_.WaitUntil(mutex_,
                              epoch_ + std::chrono::microseconds(due));
      continue;  // re-evaluate: earlier timer, cancellation, or stop
    }
    while (!pending_.empty() && pending_.begin()->first <= now_us()) {
      PendingEntry entry = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      auto it = peers_.find(entry.peer);
      if (it == peers_.end()) {  // unregistered peers are checked earlier
        DecrementOutstanding();
        continue;
      }
      QueuedMessage queued;
      queued.enqueued_us = now_us();
      if (entry.is_message) {
        queued.msg = std::move(entry.msg);
      } else {
        queued.timer_id = entry.id;
        queued.timer_cb = std::move(entry.cb);
      }
      it->second->queue.push_back(std::move(queued));
      it->second->cv.NotifyOne();
      // outstanding_ carries over from the pending entry to the queue
      // entry, so quiescence still waits for it.
    }
  }
}

void ThreadedNetwork::WorkerLoop(PeerWorker* worker) {
  [[maybe_unused]] obs::Histogram* queue_wait_us = nullptr;
  [[maybe_unused]] obs::Histogram* queue_depth = nullptr;
  [[maybe_unused]] obs::Histogram* handler_us = nullptr;
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    queue_wait_us = reg.GetHistogram("threaded.queue_wait_us",
                                     obs::LatencyBoundsUs());
    queue_depth = reg.GetHistogram("threaded.queue_depth",
                                   obs::SizeBounds());
    handler_us = reg.GetHistogram("threaded.handler_us",
                                  obs::LatencyBoundsUs());
  }
  MutexLock lock(mutex_);
  while (true) {
    worker->cv.Wait(mutex_, [&]() REQUIRES(mutex_) {
      return stopping_ || !worker->queue.empty();
    });
    if (worker->queue.empty()) {
      if (stopping_) return;
      continue;
    }
    if constexpr (obs::kMetricsEnabled) {
      queue_depth->Observe(static_cast<int64_t>(worker->queue.size()));
    }
    QueuedMessage queued = std::move(worker->queue.front());
    worker->queue.pop_front();
    if (faults_.PeerDownAt(worker->id, now_us())) {
      stats_.crash_discards += 1;
      RecordFaultEvent("net.crash_discards", "threaded");
      if (queued.timer_id != 0) {
        live_timers_.erase(queued.timer_id);
        cancelled_timers_.erase(queued.timer_id);
      }
      DecrementOutstanding();
      continue;
    }
    if (queued.timer_id != 0) {
      live_timers_.erase(queued.timer_id);
      if (cancelled_timers_.erase(queued.timer_id) > 0) {
        DecrementOutstanding();
        continue;
      }
      stats_.timers_fired += 1;
      lock.Unlock();
      queued.timer_cb();  // may Send()/ScheduleTimer(), re-locking mutex_
      lock.Lock();
      DecrementOutstanding();
      continue;
    }
    lock.Unlock();
    int64_t start_us = now_us();
    if constexpr (obs::kMetricsEnabled) {
      queue_wait_us->Observe(start_us - queued.enqueued_us);
    }
    worker->handler(queued.msg);  // may Send(), re-locking mutex_
    if constexpr (obs::kMetricsEnabled) {
      handler_us->Observe(now_us() - start_us);
    }
    lock.Lock();
    DecrementOutstanding();
  }
}

Result<int64_t> ThreadedNetwork::Run() {
  auto start = std::chrono::steady_clock::now();
  // Snapshot the worker set under the lock (-Wthread-safety caught the
  // old unlocked peers_ walks here).  The PeerWorker allocations are
  // stable, and RegisterPeer refuses while running_, so the snapshot
  // stays valid for the whole run.
  std::vector<PeerWorker*> workers;
  {
    MutexLock lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition("Run() is not reentrant");
    }
    running_ = true;
    stopping_ = false;
    workers.reserve(peers_.size());
    for (auto& [id, worker] : peers_) {
      (void)id;
      workers.push_back(worker.get());
    }
  }
  for (PeerWorker* worker : workers) {
    worker->thread = std::thread([this, worker] { WorkerLoop(worker); });
  }
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  {
    MutexLock lock(mutex_);
    quiescent_cv_.Wait(mutex_,
                       [this]() REQUIRES(mutex_) { return outstanding_ == 0; });
    stopping_ = true;
    for (PeerWorker* worker : workers) {
      worker->cv.NotifyAll();
    }
    scheduler_cv_.NotifyAll();
  }
  for (PeerWorker* worker : workers) {
    worker->thread.join();
    worker->thread = std::thread();
  }
  scheduler_.join();
  scheduler_ = std::thread();
  {
    MutexLock lock(mutex_);
    running_ = false;
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t ThreadedNetwork::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

NetworkStats ThreadedNetwork::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void ThreadedNetwork::ResetStats() {
  MutexLock lock(mutex_);
  stats_ = NetworkStats();
}

}  // namespace hyperion
