#include "p2p/wire.h"

#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "core/domain.h"

namespace hyperion {
namespace wire {

namespace {

// ---- encoding primitives -------------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void PutStrings(const std::vector<std::string>& v, std::string* out) {
  PutU32(static_cast<uint32_t>(v.size()), out);
  for (const std::string& s : v) PutString(s, out);
}

void PutValue(const Value& v, std::string* out) {
  if (v.is_string()) {
    PutU8(0, out);
    PutString(v.AsString(), out);
  } else {
    PutU8(1, out);
    PutI64(v.AsInt(), out);
  }
}

void PutDomain(const Domain& d, std::string* out) {
  switch (d.kind()) {
    case Domain::Kind::kAllStrings:
      PutU8(0, out);
      PutString(d.name(), out);
      return;
    case Domain::Kind::kAllInts:
      PutU8(1, out);
      PutString(d.name(), out);
      return;
    case Domain::Kind::kEnumerated:
      PutU8(2, out);
      PutString(d.name(), out);
      PutU32(static_cast<uint32_t>(d.values().size()), out);
      for (const Value& v : d.values()) PutValue(v, out);
      return;
  }
}

void PutSchema(const Schema& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.arity()), out);
  for (const Attribute& a : s.attrs()) {
    PutString(a.name(), out);
    PutDomain(*a.domain(), out);
  }
}

void PutCell(const Cell& c, std::string* out) {
  if (c.is_constant()) {
    PutU8(0, out);
    PutValue(c.value(), out);
  } else {
    PutU8(1, out);
    PutU32(c.var(), out);
    PutU32(static_cast<uint32_t>(c.exclusions().size()), out);
    for (const Value& v : c.exclusions()) PutValue(v, out);
  }
}

void PutMapping(const Mapping& m, std::string* out) {
  PutU32(static_cast<uint32_t>(m.arity()), out);
  for (const Cell& c : m.cells()) PutCell(c, out);
}

void PutMappings(const std::vector<Mapping>& rows, std::string* out) {
  PutU32(static_cast<uint32_t>(rows.size()), out);
  for (const Mapping& m : rows) PutMapping(m, out);
}

void PutTuple(const Tuple& t, std::string* out) {
  PutU32(static_cast<uint32_t>(t.size()), out);
  for (const Value& v : t) PutValue(v, out);
}

void PutValueFilter(const ValueFilter& f, std::string* out) {
  PutU8(f.pass_all ? 1 : 0, out);
  if (f.pass_all) return;
  const std::vector<bool>& bits = f.bloom.bit_vector();
  PutU32(static_cast<uint32_t>(bits.size()), out);
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7 || i + 1 == bits.size()) {
      PutU8(byte, out);
      byte = 0;
    }
  }
}

void PutSpec(const SessionSpec& spec, std::string* out) {
  PutU64(spec.id, out);
  PutStrings(spec.path_peers, out);
  PutStrings(spec.x_names, out);
  PutStrings(spec.y_names, out);
  PutU64(spec.cache_capacity, out);
  PutU64(spec.materialize_limit, out);
  PutU64(spec.max_result_rows, out);
  PutU8(spec.semijoin_filters ? 1 : 0, out);
  PutI64(spec.retransmit_timeout_us, out);
  PutU32(static_cast<uint32_t>(spec.max_retransmits), out);
}

void PutSummary(const PartitionSummary& p, std::string* out) {
  PutU32(static_cast<uint32_t>(p.members.size()), out);
  for (const PartitionMemberRef& m : p.members) {
    PutU64(m.hop, out);
    PutString(m.table_name, out);
    PutStrings(m.attr_names, out);
  }
  PutStrings(p.attr_names, out);
  PutU64(p.first_hop, out);
  PutU64(p.last_hop, out);
}

void PutSummaries(const std::vector<PartitionSummary>& ps, std::string* out) {
  PutU32(static_cast<uint32_t>(ps.size()), out);
  for (const PartitionSummary& p : ps) PutSummary(p, out);
}

// Shared by the WriteSlice payload (tag 12) and the slice vector nested
// in HandoffRows (tag 16) — one encoding, decoded by one reader.
void PutWriteSlice(const WriteSliceMsg& ws, std::string* out) {
  PutU64(ws.request_id, out);
  PutString(ws.origin, out);
  PutString(ws.table_name, out);
  PutU64(ws.shard, out);
  PutU64(ws.shard_version, out);
  PutU64(ws.committed_floor, out);
  PutU64(ws.table_version, out);
  PutU64(ws.total_rows, out);
  PutSchema(ws.x_schema, out);
  PutSchema(ws.y_schema, out);
  PutU32(static_cast<uint32_t>(ws.row_indices.size()), out);
  for (uint64_t index : ws.row_indices) PutU64(index, out);
  PutMappings(ws.rows, out);
  PutU8(ws.repair, out);
  PutString(ws.error, out);
  PutU32(static_cast<uint32_t>(ws.error_code), out);
  PutU64(ws.ring_epoch, out);
}

// ---- decoding primitives -------------------------------------------------

// Bounds-checked cursor over the input; every Read* fails loudly on
// truncation instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status ReadI64(int64_t* out) {
    uint64_t v = 0;
    HYP_RETURN_IF_ERROR(ReadU64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    HYP_RETURN_IF_ERROR(ReadU32(&len));
    if (remaining() < len) return Truncated("string body");
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  // Reads a count that prefixes `min_element_bytes`-sized elements,
  // rejecting counts the remaining input could not possibly hold.
  Status ReadCount(size_t min_element_bytes, uint32_t* out) {
    HYP_RETURN_IF_ERROR(ReadU32(out));
    if (min_element_bytes > 0 &&
        static_cast<uint64_t>(*out) * min_element_bytes > remaining()) {
      return Status::InvalidArgument(
          "wire: declared count exceeds remaining bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::InvalidArgument(std::string("wire: truncated input at ") +
                                   what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status ReadStrings(Reader* r, std::vector<std::string>* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(4, &n));
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    HYP_RETURN_IF_ERROR(r->ReadString(&s));
    out->push_back(std::move(s));
  }
  return Status::OK();
}

Status ReadValue(Reader* r, Value* out) {
  uint8_t tag = 0;
  HYP_RETURN_IF_ERROR(r->ReadU8(&tag));
  if (tag == 0) {
    std::string s;
    HYP_RETURN_IF_ERROR(r->ReadString(&s));
    *out = Value(std::move(s));
    return Status::OK();
  }
  if (tag == 1) {
    int64_t i = 0;
    HYP_RETURN_IF_ERROR(r->ReadI64(&i));
    *out = Value(i);
    return Status::OK();
  }
  return Status::InvalidArgument("wire: unknown value tag");
}

Status ReadDomain(Reader* r, DomainPtr* out) {
  uint8_t kind = 0;
  HYP_RETURN_IF_ERROR(r->ReadU8(&kind));
  std::string name;
  HYP_RETURN_IF_ERROR(r->ReadString(&name));
  switch (kind) {
    case 0:
      *out = Domain::AllStrings(std::move(name));
      return Status::OK();
    case 1:
      *out = Domain::AllInts(std::move(name));
      return Status::OK();
    case 2: {
      uint32_t n = 0;
      HYP_RETURN_IF_ERROR(r->ReadCount(1, &n));
      if (n == 0) {
        return Status::InvalidArgument("wire: empty enumerated domain");
      }
      std::vector<Value> values;
      values.reserve(n);
      ValueType type = ValueType::kString;
      for (uint32_t i = 0; i < n; ++i) {
        Value v;
        HYP_RETURN_IF_ERROR(ReadValue(r, &v));
        if (i == 0) {
          type = v.type();
        } else if (v.type() != type) {
          return Status::InvalidArgument(
              "wire: enumerated domain mixes value types");
        }
        values.push_back(std::move(v));
      }
      *out = Domain::Enumerated(std::move(name), std::move(values));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("wire: unknown domain kind");
  }
}

Status ReadSchema(Reader* r, Schema* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(6, &n));
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    HYP_RETURN_IF_ERROR(r->ReadString(&name));
    DomainPtr domain;
    HYP_RETURN_IF_ERROR(ReadDomain(r, &domain));
    attrs.emplace_back(std::move(name), std::move(domain));
  }
  *out = Schema(std::move(attrs));
  return Status::OK();
}

Status ReadCell(Reader* r, Cell* out) {
  uint8_t tag = 0;
  HYP_RETURN_IF_ERROR(r->ReadU8(&tag));
  if (tag == 0) {
    Value v;
    HYP_RETURN_IF_ERROR(ReadValue(r, &v));
    *out = Cell::Constant(std::move(v));
    return Status::OK();
  }
  if (tag == 1) {
    uint32_t var = 0;
    HYP_RETURN_IF_ERROR(r->ReadU32(&var));
    uint32_t n = 0;
    HYP_RETURN_IF_ERROR(r->ReadCount(1, &n));
    std::set<Value> exclusions;
    for (uint32_t i = 0; i < n; ++i) {
      Value v;
      HYP_RETURN_IF_ERROR(ReadValue(r, &v));
      exclusions.insert(std::move(v));
    }
    *out = Cell::Variable(var, std::move(exclusions));
    return Status::OK();
  }
  return Status::InvalidArgument("wire: unknown cell tag");
}

Status ReadMapping(Reader* r, Mapping* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(2, &n));
  std::vector<Cell> cells;
  cells.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Cell c = Cell::Constant(Value());
    HYP_RETURN_IF_ERROR(ReadCell(r, &c));
    cells.push_back(std::move(c));
  }
  *out = Mapping(std::move(cells));
  return Status::OK();
}

Status ReadMappings(Reader* r, std::vector<Mapping>* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(4, &n));
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Mapping m;
    HYP_RETURN_IF_ERROR(ReadMapping(r, &m));
    out->push_back(std::move(m));
  }
  return Status::OK();
}

Status ReadTuple(Reader* r, Tuple* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(2, &n));
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    HYP_RETURN_IF_ERROR(ReadValue(r, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status ReadValueFilter(Reader* r, ValueFilter* out) {
  uint8_t pass_all = 0;
  HYP_RETURN_IF_ERROR(r->ReadU8(&pass_all));
  out->pass_all = pass_all != 0;
  if (out->pass_all) {
    out->bloom = BloomFilter();
    return Status::OK();
  }
  uint32_t nbits = 0;
  HYP_RETURN_IF_ERROR(r->ReadU32(&nbits));
  size_t nbytes = (nbits + 7) / 8;
  if (r->remaining() < nbytes) {
    return Status::InvalidArgument("wire: truncated bloom filter");
  }
  std::vector<bool> bits(nbits, false);
  uint8_t byte = 0;
  for (uint32_t i = 0; i < nbits; ++i) {
    if (i % 8 == 0) HYP_RETURN_IF_ERROR(r->ReadU8(&byte));
    bits[i] = (byte >> (i % 8)) & 1;
  }
  out->bloom = BloomFilter::FromBits(std::move(bits));
  return Status::OK();
}

Status ReadSpec(Reader* r, SessionSpec* out) {
  HYP_RETURN_IF_ERROR(r->ReadU64(&out->id));
  HYP_RETURN_IF_ERROR(ReadStrings(r, &out->path_peers));
  HYP_RETURN_IF_ERROR(ReadStrings(r, &out->x_names));
  HYP_RETURN_IF_ERROR(ReadStrings(r, &out->y_names));
  uint64_t u = 0;
  HYP_RETURN_IF_ERROR(r->ReadU64(&u));
  out->cache_capacity = static_cast<size_t>(u);
  HYP_RETURN_IF_ERROR(r->ReadU64(&u));
  out->materialize_limit = static_cast<size_t>(u);
  HYP_RETURN_IF_ERROR(r->ReadU64(&u));
  out->max_result_rows = static_cast<size_t>(u);
  uint8_t semijoin = 0;
  HYP_RETURN_IF_ERROR(r->ReadU8(&semijoin));
  out->semijoin_filters = semijoin != 0;
  HYP_RETURN_IF_ERROR(r->ReadI64(&out->retransmit_timeout_us));
  uint32_t retries = 0;
  HYP_RETURN_IF_ERROR(r->ReadU32(&retries));
  out->max_retransmits = static_cast<int>(retries);
  return Status::OK();
}

Status ReadSummary(Reader* r, PartitionSummary* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(16, &n));
  out->members.clear();
  out->members.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PartitionMemberRef m;
    uint64_t hop = 0;
    HYP_RETURN_IF_ERROR(r->ReadU64(&hop));
    m.hop = static_cast<size_t>(hop);
    HYP_RETURN_IF_ERROR(r->ReadString(&m.table_name));
    HYP_RETURN_IF_ERROR(ReadStrings(r, &m.attr_names));
    out->members.push_back(std::move(m));
  }
  HYP_RETURN_IF_ERROR(ReadStrings(r, &out->attr_names));
  uint64_t hop = 0;
  HYP_RETURN_IF_ERROR(r->ReadU64(&hop));
  out->first_hop = static_cast<size_t>(hop);
  HYP_RETURN_IF_ERROR(r->ReadU64(&hop));
  out->last_hop = static_cast<size_t>(hop);
  return Status::OK();
}

Status ReadSummaries(Reader* r, std::vector<PartitionSummary>* out) {
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(24, &n));
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PartitionSummary p;
    HYP_RETURN_IF_ERROR(ReadSummary(r, &p));
    out->push_back(std::move(p));
  }
  return Status::OK();
}

Status ReadWriteSlice(Reader* r, WriteSliceMsg* ws) {
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->request_id));
  HYP_RETURN_IF_ERROR(r->ReadString(&ws->origin));
  HYP_RETURN_IF_ERROR(r->ReadString(&ws->table_name));
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->shard));
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->shard_version));
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->committed_floor));
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->table_version));
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->total_rows));
  HYP_RETURN_IF_ERROR(ReadSchema(r, &ws->x_schema));
  HYP_RETURN_IF_ERROR(ReadSchema(r, &ws->y_schema));
  uint32_t n = 0;
  HYP_RETURN_IF_ERROR(r->ReadCount(8, &n));
  ws->row_indices.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t index = 0;
    HYP_RETURN_IF_ERROR(r->ReadU64(&index));
    ws->row_indices.push_back(index);
  }
  HYP_RETURN_IF_ERROR(ReadMappings(r, &ws->rows));
  if (ws->rows.size() != ws->row_indices.size()) {
    return Status::InvalidArgument(
        "wire: write slice index/row counts disagree");
  }
  HYP_RETURN_IF_ERROR(r->ReadU8(&ws->repair));
  HYP_RETURN_IF_ERROR(r->ReadString(&ws->error));
  uint32_t code = 0;
  HYP_RETURN_IF_ERROR(r->ReadU32(&code));
  ws->error_code = static_cast<int32_t>(code);
  HYP_RETURN_IF_ERROR(r->ReadU64(&ws->ring_epoch));
  return Status::OK();
}

// ---- per-payload encode/decode -------------------------------------------

void EncodePayload(const Message& msg, std::string* out) {
  if (const auto* ping = std::get_if<PingMsg>(&msg.payload)) {
    PutU64(ping->ping_id, out);
    PutString(ping->origin, out);
    PutU32(static_cast<uint32_t>(ping->ttl), out);
    PutU32(static_cast<uint32_t>(ping->hops), out);
  } else if (const auto* pong = std::get_if<PongMsg>(&msg.payload)) {
    PutU64(pong->ping_id, out);
    PutString(pong->responder, out);
    PutU32(static_cast<uint32_t>(pong->hops), out);
  } else if (const auto* init = std::get_if<SessionInitMsg>(&msg.payload)) {
    PutSpec(init->spec, out);
    PutSummaries(init->partitions, out);
    PutU32(static_cast<uint32_t>(init->forward_filters.size()), out);
    for (const auto& [attr, filter] : init->forward_filters) {
      PutString(attr, out);
      PutValueFilter(filter, out);
    }
    PutU64(init->seq, out);
  } else if (const auto* plan = std::get_if<ComputePlanMsg>(&msg.payload)) {
    PutSpec(plan->spec, out);
    PutSummaries(plan->partitions, out);
    PutU64(plan->seq, out);
  } else if (const auto* batch = std::get_if<CoverBatchMsg>(&msg.payload)) {
    PutU64(batch->session, out);
    PutU64(batch->partition, out);
    PutSchema(batch->schema, out);
    PutMappings(batch->rows, out);
    PutU8(batch->eos ? 1 : 0, out);
    PutU64(batch->seq, out);
  } else if (const auto* fin = std::get_if<FinalRowsMsg>(&msg.payload)) {
    PutU64(fin->session, out);
    PutU64(fin->partition, out);
    PutSchema(fin->schema, out);
    PutMappings(fin->rows, out);
    PutU8(fin->eos ? 1 : 0, out);
    PutU8(fin->satisfiable ? 1 : 0, out);
    PutString(fin->error, out);
    PutU32(static_cast<uint32_t>(fin->error_code), out);
    PutU64(fin->seq, out);
  } else if (const auto* search = std::get_if<SearchMsg>(&msg.payload)) {
    PutU64(search->search_id, out);
    PutString(search->origin, out);
    PutU32(static_cast<uint32_t>(search->ttl), out);
    PutStrings(search->query.attrs, out);
    PutU32(static_cast<uint32_t>(search->query.keys.size()), out);
    for (const Tuple& t : search->query.keys) PutTuple(t, out);
    PutU8(search->complete ? 1 : 0, out);
  } else if (const auto* hit = std::get_if<SearchHitMsg>(&msg.payload)) {
    PutU64(hit->search_id, out);
    PutString(hit->responder, out);
    PutSchema(hit->schema, out);
    PutU32(static_cast<uint32_t>(hit->tuples.size()), out);
    for (const Tuple& t : hit->tuples) PutTuple(t, out);
    PutU8(hit->complete ? 1 : 0, out);
  } else if (const auto* ack = std::get_if<AckMsg>(&msg.payload)) {
    PutU64(ack->session, out);
    PutU8(ack->kind, out);
    PutU64(ack->partition, out);
    PutU64(ack->seq, out);
  } else if (const auto* hb = std::get_if<HeartbeatMsg>(&msg.payload)) {
    PutString(hb->node, out);
    PutU8(hb->role, out);
    PutString(hb->listen_addr, out);
    PutU64(hb->incarnation, out);
    PutU64(hb->beat, out);
    PutU32(static_cast<uint32_t>(hb->shards.size()), out);
    for (size_t i = 0; i < hb->shards.size(); ++i) {
      PutU64(hb->shards[i], out);
      PutU64(i < hb->shard_versions.size() ? hb->shard_versions[i] : 0, out);
    }
    PutU64(hb->ring_epoch, out);
    PutStrings(hb->ring_nodes, out);
    PutU64(hb->pending_epoch, out);
    PutStrings(hb->pending_nodes, out);
    PutStrings(hb->peer_nodes, out);
    PutStrings(hb->peer_addrs, out);
  } else if (const auto* fetch = std::get_if<ShardFetchMsg>(&msg.payload)) {
    PutU64(fetch->request_id, out);
    PutString(fetch->table_name, out);
    PutU64(fetch->shard, out);
    PutU64(fetch->ring_epoch, out);
  } else if (const auto* slice = std::get_if<ShardRowsMsg>(&msg.payload)) {
    PutU64(slice->request_id, out);
    PutString(slice->table_name, out);
    PutString(slice->node, out);
    PutU64(slice->shard, out);
    PutU64(slice->version, out);
    PutU64(slice->total_rows, out);
    PutSchema(slice->x_schema, out);
    PutSchema(slice->y_schema, out);
    PutU32(static_cast<uint32_t>(slice->row_indices.size()), out);
    for (uint64_t index : slice->row_indices) PutU64(index, out);
    PutMappings(slice->rows, out);
    PutString(slice->error, out);
    PutU32(static_cast<uint32_t>(slice->error_code), out);
    PutU64(slice->ring_epoch, out);
  } else if (const auto* ws = std::get_if<WriteSliceMsg>(&msg.payload)) {
    PutWriteSlice(*ws, out);
  } else if (const auto* wa = std::get_if<WriteAckMsg>(&msg.payload)) {
    PutU64(wa->request_id, out);
    PutString(wa->node, out);
    PutU64(wa->shard, out);
    PutU8(wa->applied, out);
    PutU64(wa->shard_version, out);
    PutString(wa->error, out);
    PutU32(static_cast<uint32_t>(wa->error_code), out);
    PutU64(wa->ring_epoch, out);
  } else if (const auto* rf = std::get_if<RepairFetchMsg>(&msg.payload)) {
    PutU64(rf->request_id, out);
    PutString(rf->node, out);
    PutU64(rf->shard, out);
    PutU64(rf->from_version, out);
  } else if (const auto* hf = std::get_if<HandoffFetchMsg>(&msg.payload)) {
    PutU64(hf->request_id, out);
    PutString(hf->node, out);
    PutU64(hf->shard, out);
    PutU64(hf->ring_epoch, out);
  } else if (const auto* hr = std::get_if<HandoffRowsMsg>(&msg.payload)) {
    PutU64(hr->request_id, out);
    PutString(hr->node, out);
    PutU64(hr->shard, out);
    PutU64(hr->shard_version, out);
    PutU32(static_cast<uint32_t>(hr->slices.size()), out);
    for (const WriteSliceMsg& slice : hr->slices) PutWriteSlice(slice, out);
    PutString(hr->error, out);
    PutU32(static_cast<uint32_t>(hr->error_code), out);
  } else if (const auto* ha = std::get_if<HandoffAckMsg>(&msg.payload)) {
    PutU64(ha->request_id, out);
    PutString(ha->node, out);
    PutU64(ha->shard, out);
    PutU64(ha->shard_version, out);
    PutU64(ha->rows, out);
    PutU64(ha->ring_epoch, out);
  }
}

Status DecodePayload(uint8_t tag, Reader* r, Message* msg) {
  switch (tag) {
    case 0: {
      PingMsg ping;
      HYP_RETURN_IF_ERROR(r->ReadU64(&ping.ping_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&ping.origin));
      uint32_t u = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&u));
      ping.ttl = static_cast<int>(u);
      HYP_RETURN_IF_ERROR(r->ReadU32(&u));
      ping.hops = static_cast<int>(u);
      msg->payload = std::move(ping);
      return Status::OK();
    }
    case 1: {
      PongMsg pong;
      HYP_RETURN_IF_ERROR(r->ReadU64(&pong.ping_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&pong.responder));
      uint32_t u = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&u));
      pong.hops = static_cast<int>(u);
      msg->payload = std::move(pong);
      return Status::OK();
    }
    case 2: {
      SessionInitMsg init;
      HYP_RETURN_IF_ERROR(ReadSpec(r, &init.spec));
      HYP_RETURN_IF_ERROR(ReadSummaries(r, &init.partitions));
      uint32_t n = 0;
      HYP_RETURN_IF_ERROR(r->ReadCount(5, &n));
      for (uint32_t i = 0; i < n; ++i) {
        std::string attr;
        HYP_RETURN_IF_ERROR(r->ReadString(&attr));
        ValueFilter filter;
        HYP_RETURN_IF_ERROR(ReadValueFilter(r, &filter));
        init.forward_filters.emplace(std::move(attr), std::move(filter));
      }
      HYP_RETURN_IF_ERROR(r->ReadU64(&init.seq));
      msg->payload = std::move(init);
      return Status::OK();
    }
    case 3: {
      ComputePlanMsg plan;
      HYP_RETURN_IF_ERROR(ReadSpec(r, &plan.spec));
      HYP_RETURN_IF_ERROR(ReadSummaries(r, &plan.partitions));
      HYP_RETURN_IF_ERROR(r->ReadU64(&plan.seq));
      msg->payload = std::move(plan);
      return Status::OK();
    }
    case 4: {
      CoverBatchMsg batch;
      HYP_RETURN_IF_ERROR(r->ReadU64(&batch.session));
      uint64_t partition = 0;
      HYP_RETURN_IF_ERROR(r->ReadU64(&partition));
      batch.partition = static_cast<size_t>(partition);
      HYP_RETURN_IF_ERROR(ReadSchema(r, &batch.schema));
      HYP_RETURN_IF_ERROR(ReadMappings(r, &batch.rows));
      uint8_t eos = 0;
      HYP_RETURN_IF_ERROR(r->ReadU8(&eos));
      batch.eos = eos != 0;
      HYP_RETURN_IF_ERROR(r->ReadU64(&batch.seq));
      msg->payload = std::move(batch);
      return Status::OK();
    }
    case 5: {
      FinalRowsMsg fin;
      HYP_RETURN_IF_ERROR(r->ReadU64(&fin.session));
      uint64_t partition = 0;
      HYP_RETURN_IF_ERROR(r->ReadU64(&partition));
      fin.partition = static_cast<size_t>(partition);
      HYP_RETURN_IF_ERROR(ReadSchema(r, &fin.schema));
      HYP_RETURN_IF_ERROR(ReadMappings(r, &fin.rows));
      uint8_t b = 0;
      HYP_RETURN_IF_ERROR(r->ReadU8(&b));
      fin.eos = b != 0;
      HYP_RETURN_IF_ERROR(r->ReadU8(&b));
      fin.satisfiable = b != 0;
      HYP_RETURN_IF_ERROR(r->ReadString(&fin.error));
      uint32_t code = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&code));
      fin.error_code = static_cast<int32_t>(code);
      HYP_RETURN_IF_ERROR(r->ReadU64(&fin.seq));
      msg->payload = std::move(fin);
      return Status::OK();
    }
    case 6: {
      SearchMsg search;
      HYP_RETURN_IF_ERROR(r->ReadU64(&search.search_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&search.origin));
      uint32_t u = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&u));
      search.ttl = static_cast<int>(u);
      HYP_RETURN_IF_ERROR(ReadStrings(r, &search.query.attrs));
      uint32_t n = 0;
      HYP_RETURN_IF_ERROR(r->ReadCount(4, &n));
      search.query.keys.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Tuple t;
        HYP_RETURN_IF_ERROR(ReadTuple(r, &t));
        search.query.keys.push_back(std::move(t));
      }
      uint8_t complete = 0;
      HYP_RETURN_IF_ERROR(r->ReadU8(&complete));
      search.complete = complete != 0;
      msg->payload = std::move(search);
      return Status::OK();
    }
    case 7: {
      SearchHitMsg hit;
      HYP_RETURN_IF_ERROR(r->ReadU64(&hit.search_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&hit.responder));
      HYP_RETURN_IF_ERROR(ReadSchema(r, &hit.schema));
      uint32_t n = 0;
      HYP_RETURN_IF_ERROR(r->ReadCount(4, &n));
      hit.tuples.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Tuple t;
        HYP_RETURN_IF_ERROR(ReadTuple(r, &t));
        hit.tuples.push_back(std::move(t));
      }
      uint8_t complete = 0;
      HYP_RETURN_IF_ERROR(r->ReadU8(&complete));
      hit.complete = complete != 0;
      msg->payload = std::move(hit);
      return Status::OK();
    }
    case 8: {
      AckMsg ack;
      HYP_RETURN_IF_ERROR(r->ReadU64(&ack.session));
      HYP_RETURN_IF_ERROR(r->ReadU8(&ack.kind));
      HYP_RETURN_IF_ERROR(r->ReadU64(&ack.partition));
      HYP_RETURN_IF_ERROR(r->ReadU64(&ack.seq));
      msg->payload = std::move(ack);
      return Status::OK();
    }
    case 9: {
      HeartbeatMsg hb;
      HYP_RETURN_IF_ERROR(r->ReadString(&hb.node));
      HYP_RETURN_IF_ERROR(r->ReadU8(&hb.role));
      HYP_RETURN_IF_ERROR(r->ReadString(&hb.listen_addr));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hb.incarnation));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hb.beat));
      uint32_t n = 0;
      HYP_RETURN_IF_ERROR(r->ReadCount(16, &n));
      hb.shards.reserve(n);
      hb.shard_versions.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t shard = 0;
        uint64_t version = 0;
        HYP_RETURN_IF_ERROR(r->ReadU64(&shard));
        HYP_RETURN_IF_ERROR(r->ReadU64(&version));
        hb.shards.push_back(shard);
        hb.shard_versions.push_back(version);
      }
      HYP_RETURN_IF_ERROR(r->ReadU64(&hb.ring_epoch));
      HYP_RETURN_IF_ERROR(ReadStrings(r, &hb.ring_nodes));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hb.pending_epoch));
      HYP_RETURN_IF_ERROR(ReadStrings(r, &hb.pending_nodes));
      HYP_RETURN_IF_ERROR(ReadStrings(r, &hb.peer_nodes));
      HYP_RETURN_IF_ERROR(ReadStrings(r, &hb.peer_addrs));
      msg->payload = std::move(hb);
      return Status::OK();
    }
    case 10: {
      ShardFetchMsg fetch;
      HYP_RETURN_IF_ERROR(r->ReadU64(&fetch.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&fetch.table_name));
      HYP_RETURN_IF_ERROR(r->ReadU64(&fetch.shard));
      HYP_RETURN_IF_ERROR(r->ReadU64(&fetch.ring_epoch));
      msg->payload = std::move(fetch);
      return Status::OK();
    }
    case 11: {
      ShardRowsMsg slice;
      HYP_RETURN_IF_ERROR(r->ReadU64(&slice.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&slice.table_name));
      HYP_RETURN_IF_ERROR(r->ReadString(&slice.node));
      HYP_RETURN_IF_ERROR(r->ReadU64(&slice.shard));
      HYP_RETURN_IF_ERROR(r->ReadU64(&slice.version));
      HYP_RETURN_IF_ERROR(r->ReadU64(&slice.total_rows));
      HYP_RETURN_IF_ERROR(ReadSchema(r, &slice.x_schema));
      HYP_RETURN_IF_ERROR(ReadSchema(r, &slice.y_schema));
      uint32_t n = 0;
      HYP_RETURN_IF_ERROR(r->ReadCount(8, &n));
      slice.row_indices.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t index = 0;
        HYP_RETURN_IF_ERROR(r->ReadU64(&index));
        slice.row_indices.push_back(index);
      }
      HYP_RETURN_IF_ERROR(ReadMappings(r, &slice.rows));
      if (slice.rows.size() != slice.row_indices.size()) {
        return Status::InvalidArgument(
            "wire: shard slice index/row counts disagree");
      }
      HYP_RETURN_IF_ERROR(r->ReadString(&slice.error));
      uint32_t code = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&code));
      slice.error_code = static_cast<int32_t>(code);
      HYP_RETURN_IF_ERROR(r->ReadU64(&slice.ring_epoch));
      msg->payload = std::move(slice);
      return Status::OK();
    }
    case 12: {
      WriteSliceMsg ws;
      HYP_RETURN_IF_ERROR(ReadWriteSlice(r, &ws));
      msg->payload = std::move(ws);
      return Status::OK();
    }
    case 13: {
      WriteAckMsg wa;
      HYP_RETURN_IF_ERROR(r->ReadU64(&wa.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&wa.node));
      HYP_RETURN_IF_ERROR(r->ReadU64(&wa.shard));
      HYP_RETURN_IF_ERROR(r->ReadU8(&wa.applied));
      HYP_RETURN_IF_ERROR(r->ReadU64(&wa.shard_version));
      HYP_RETURN_IF_ERROR(r->ReadString(&wa.error));
      uint32_t code = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&code));
      wa.error_code = static_cast<int32_t>(code);
      HYP_RETURN_IF_ERROR(r->ReadU64(&wa.ring_epoch));
      msg->payload = std::move(wa);
      return Status::OK();
    }
    case 14: {
      RepairFetchMsg rf;
      HYP_RETURN_IF_ERROR(r->ReadU64(&rf.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&rf.node));
      HYP_RETURN_IF_ERROR(r->ReadU64(&rf.shard));
      HYP_RETURN_IF_ERROR(r->ReadU64(&rf.from_version));
      msg->payload = std::move(rf);
      return Status::OK();
    }
    case 15: {
      HandoffFetchMsg hf;
      HYP_RETURN_IF_ERROR(r->ReadU64(&hf.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&hf.node));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hf.shard));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hf.ring_epoch));
      msg->payload = std::move(hf);
      return Status::OK();
    }
    case 16: {
      HandoffRowsMsg hr;
      HYP_RETURN_IF_ERROR(r->ReadU64(&hr.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&hr.node));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hr.shard));
      HYP_RETURN_IF_ERROR(r->ReadU64(&hr.shard_version));
      uint32_t n = 0;
      // A slice is at minimum its fixed-width fields plus empty schemas
      // and strings — comfortably more than 64 bytes on the wire.
      HYP_RETURN_IF_ERROR(r->ReadCount(64, &n));
      hr.slices.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        WriteSliceMsg ws;
        HYP_RETURN_IF_ERROR(ReadWriteSlice(r, &ws));
        hr.slices.push_back(std::move(ws));
      }
      HYP_RETURN_IF_ERROR(r->ReadString(&hr.error));
      uint32_t code = 0;
      HYP_RETURN_IF_ERROR(r->ReadU32(&code));
      hr.error_code = static_cast<int32_t>(code);
      msg->payload = std::move(hr);
      return Status::OK();
    }
    case 17: {
      HandoffAckMsg ha;
      HYP_RETURN_IF_ERROR(r->ReadU64(&ha.request_id));
      HYP_RETURN_IF_ERROR(r->ReadString(&ha.node));
      HYP_RETURN_IF_ERROR(r->ReadU64(&ha.shard));
      HYP_RETURN_IF_ERROR(r->ReadU64(&ha.shard_version));
      HYP_RETURN_IF_ERROR(r->ReadU64(&ha.rows));
      HYP_RETURN_IF_ERROR(r->ReadU64(&ha.ring_epoch));
      msg->payload = std::move(ha);
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("wire: unknown payload tag " +
                                     std::to_string(tag));
  }
}

}  // namespace

std::string EncodeMessage(const Message& msg) {
  std::string out;
  out.reserve(64 + msg.ByteSize());
  PutU8(kWireVersion, &out);
  PutU8(static_cast<uint8_t>(msg.payload.index()), &out);
  PutString(msg.from, &out);
  PutString(msg.to, &out);
  EncodePayload(msg, &out);
  return out;
}

Result<Message> DecodeMessage(std::string_view bytes) {
  Reader r(bytes);
  uint8_t version = 0;
  HYP_RETURN_IF_ERROR(r.ReadU8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported version " +
                                   std::to_string(version));
  }
  uint8_t tag = 0;
  HYP_RETURN_IF_ERROR(r.ReadU8(&tag));
  Message msg;
  HYP_RETURN_IF_ERROR(r.ReadString(&msg.from));
  HYP_RETURN_IF_ERROR(r.ReadString(&msg.to));
  HYP_RETURN_IF_ERROR(DecodePayload(tag, &r, &msg));
  if (r.remaining() != 0) {
    return Status::InvalidArgument("wire: trailing bytes after payload");
  }
  return msg;
}

void AppendFrame(std::string_view payload, uint64_t origin_token,
                 std::string* out) {
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU64(origin_token, out);
  out->append(payload);
}

Result<FrameView> PeekFrame(std::string_view buffer) {
  FrameView view;
  if (buffer.size() < kFrameHeaderBytes) return view;  // need more
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i])) << (8 * i);
  }
  if (len > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("wire: frame payload of " +
                                   std::to_string(len) +
                                   " bytes exceeds the limit");
  }
  if (buffer.size() < kFrameHeaderBytes + len) return view;  // need more
  uint64_t token = 0;
  for (int i = 0; i < 8; ++i) {
    token |= static_cast<uint64_t>(static_cast<uint8_t>(buffer[4 + i]))
             << (8 * i);
  }
  view.complete = true;
  view.origin_token = token;
  view.payload = buffer.substr(kFrameHeaderBytes, len);
  view.consumed = kFrameHeaderBytes + len;
  return view;
}

}  // namespace wire
}  // namespace hyperion
