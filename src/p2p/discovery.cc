#include "p2p/discovery.h"

#include <algorithm>
#include <unordered_set>

namespace hyperion {

AcquaintanceGraph AcquaintanceGraph::FromPeers(
    const std::vector<const PeerNode*>& peers) {
  AcquaintanceGraph g;
  for (const PeerNode* peer : peers) {
    g.adjacency_[peer->id()];  // register even if isolated
    for (const std::string& neighbor : peer->Acquaintances()) {
      g.AddEdge(peer->id(), neighbor);
    }
  }
  return g;
}

void AcquaintanceGraph::AddEdge(const std::string& from,
                                const std::string& to) {
  adjacency_[from].insert(to);
  adjacency_[to];  // make sure the target exists as a node
}

const std::set<std::string>& AcquaintanceGraph::Neighbors(
    const std::string& peer) const {
  static const std::set<std::string> kEmpty;
  auto it = adjacency_.find(peer);
  return it == adjacency_.end() ? kEmpty : it->second;
}

namespace {

void Dfs(const AcquaintanceGraph& g, const std::string& current,
         const std::string& target, size_t max_peers,
         std::vector<std::string>* stack, std::set<std::string>* visited,
         std::vector<std::vector<std::string>>* out) {
  if (current == target) {
    out->push_back(*stack);
    return;
  }
  if (stack->size() >= max_peers) return;
  for (const std::string& next : g.Neighbors(current)) {
    if (visited->count(next)) continue;
    visited->insert(next);
    stack->push_back(next);
    Dfs(g, next, target, max_peers, stack, visited, out);
    stack->pop_back();
    visited->erase(next);
  }
}

}  // namespace

std::vector<std::vector<std::string>> AcquaintanceGraph::EnumeratePaths(
    const std::string& from, const std::string& to, size_t max_peers) const {
  std::vector<std::vector<std::string>> out;
  if (max_peers < 2 || from == to) return out;
  std::vector<std::string> stack = {from};
  std::set<std::string> visited = {from};
  Dfs(*this, from, to, max_peers, &stack, &visited, &out);
  std::sort(out.begin(), out.end(),
            [](const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  return out;
}

std::vector<std::string> AcquaintanceGraph::PeerIds() const {
  std::vector<std::string> out;
  out.reserve(adjacency_.size());
  for (const auto& [id, neighbors] : adjacency_) {
    (void)neighbors;
    out.push_back(id);
  }
  return out;
}

Result<TranslationOutcome> TranslateAcrossNetwork(
    const std::vector<const PeerNode*>& peers, const std::string& from,
    const std::string& to, const SelectionQuery& query, size_t max_peers) {
  std::map<std::string, const PeerNode*> by_id;
  for (const PeerNode* p : peers) by_id[p->id()] = p;
  if (!by_id.count(from) || !by_id.count(to)) {
    return Status::NotFound("unknown endpoint peer");
  }
  AcquaintanceGraph graph = AcquaintanceGraph::FromPeers(peers);

  TranslationOutcome merged;
  bool any_path = false;
  std::unordered_set<Tuple, TupleHash> seen;
  for (const std::vector<std::string>& ids :
       graph.EnumeratePaths(from, to, max_peers)) {
    // Build the constraint path for this id sequence.
    std::vector<AttributeSet> attrs;
    std::vector<std::vector<MappingConstraint>> hops;
    for (size_t i = 0; i < ids.size(); ++i) {
      attrs.push_back(by_id.at(ids[i])->attributes());
      if (i + 1 < ids.size()) {
        hops.push_back(by_id.at(ids[i])->ConstraintsTo(ids[i + 1]));
      }
    }
    auto path = ConstraintPath::Create(std::move(attrs), std::move(hops));
    if (!path.ok()) continue;  // malformed acquaintance; skip this path
    auto outcome = TranslateAlongPath(query, path.value());
    if (!outcome.ok()) continue;  // no applicable tables on this path

    if (!any_path) {
      merged.query.attrs = outcome.value().query.attrs;
      any_path = true;
    } else if (merged.query.attrs != outcome.value().query.attrs) {
      // Paths targeting different attribute subsets of `to` cannot merge.
      return Status::InvalidArgument(
          "paths translate to different target attributes");
    }
    merged.complete = merged.complete && outcome.value().complete;
    for (Tuple& key : outcome.value().query.keys) {
      if (seen.insert(key).second) {
        merged.query.keys.push_back(std::move(key));
      }
    }
  }
  if (!any_path) {
    return Status::NotFound("no acquaintance path translates the query");
  }
  return merged;
}

}  // namespace hyperion
