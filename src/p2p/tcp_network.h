// TcpNetwork: the Network interface over real POSIX TCP sockets — every
// frame a peer sends crosses the kernel's loopback (or a real NIC when
// peers live in another process), serialized through the wire codec
// (wire.h).  This is the transport the ROADMAP's remaining items
// (cross-peer cache coherence, incremental maintenance) need: a byte
// pipe between genuinely separate QueryService replicas.
//
// Topology: every registered peer gets its own listening socket
// (ephemeral port by default; ListenPort() reports it).  Sends open one
// outgoing connection per destination peer on demand — to the local
// listener for peers registered on this instance, or to the address
// named in Options::remote_peers / SetRemotePeer for peers of another
// instance — with exponential reconnect backoff on connect failure.
//
// Concurrency contract: a single event-loop thread owns all sockets and
// runs every handler and timer callback, so handlers for one peer (in
// fact for all peers of this instance) never run concurrently — the
// same invariant SimNetwork and ThreadedNetwork provide.  Send() is
// thread-safe and callable from inside handlers.
//
// Quiescence: Run() returns once every frame this instance sent has
// been flushed (remote destinations) or fully handled (local
// destinations), and no timer is pending.  Frames carry a per-instance
// origin token (wire.h) so a receiver can tell its own in-flight frames
// — which count toward its quiescence — from frames a remote instance
// sent, which do not.  Two-instance setups therefore use Start() +
// RunUntil(predicate) + Stop() instead of Run().
//
// Fault injection sits at the socket boundary: the shared FaultInjector
// decides drop/duplicate/jitter per Send before any bytes are staged,
// and crash windows gate delivery (and timers) at the receiving end —
// identical semantics to the other two transports.

#ifndef HYPERION_P2P_TCP_NETWORK_H_
#define HYPERION_P2P_TCP_NETWORK_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "p2p/fault.h"
#include "p2p/network_interface.h"

namespace hyperion {

/// \brief TCP-specific traffic counters (also exported as net.tcp.* in
/// the default MetricRegistry).
struct TcpStats {
  uint64_t connects = 0;          // connections established
  uint64_t reconnects = 0;        // connect retries after a failure
  uint64_t connect_failures = 0;  // frames abandoned: peer unreachable
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;      // frame bytes handed to the kernel
  uint64_t bytes_received = 0;  // frame bytes read from the kernel
  uint64_t frames_bad = 0;      // undecodable frames (connection dropped)
};

/// \brief Socket transport.  Not copyable; Run() is not reentrant.
class TcpNetwork : public Network {
 public:
  struct Options {
    /// Address the per-peer listeners bind to.
    std::string listen_host = "127.0.0.1";
    /// Port for the first registered peer; 0 = ephemeral (each listener
    /// asks the kernel).  Nonzero values increment per peer.
    uint16_t base_port = 0;
    /// Destinations living in another TcpNetwork instance:
    /// peer id → "host:port" of that instance's listener for the peer.
    std::map<std::string, std::string> remote_peers;
    /// First retry delay after a failed connect; doubles per attempt.
    int64_t reconnect_backoff_us = 10'000;
    int64_t max_reconnect_backoff_us = 500'000;
    /// Connect attempts per connection before the staged frames are
    /// abandoned (the reliability layer sees it as loss).
    int max_connect_attempts = 5;
  };

  TcpNetwork();
  explicit TcpNetwork(Options options);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// \brief Registers a peer and binds its listening socket immediately
  /// (so ListenPort() is valid before Start()).  Not callable while the
  /// event loop is running.
  Status RegisterPeer(const std::string& id, Handler handler) override;

  /// \brief The port `peer`'s listener is bound to.
  Result<uint16_t> ListenPort(const std::string& peer) const;

  /// \brief Names a peer served by another instance; sends to `id` will
  /// connect to `host_port` ("host:port").  Callable any time.
  void SetRemotePeer(const std::string& id, const std::string& host_port);

  /// \brief Thread-safe; callable before Start() (frames flush once the
  /// loop runs) and from inside handlers.  With a FaultPlan installed
  /// the message may be dropped, duplicated or delayed here — before
  /// any bytes touch a socket.
  Status Send(Message msg) override;

  /// \brief Schedules `cb` on the event loop after `delay_us` of wall
  /// time.  Pending timers count against quiescence — cancel timers you
  /// no longer need.
  Result<TimerId> ScheduleTimer(const std::string& peer, int64_t delay_us,
                                TimerCallback cb) override;

  void CancelTimer(TimerId id) override;

  void SetFaultPlan(FaultPlan plan) override;

  /// \brief Spawns the event-loop thread.  No-op when already running.
  Status Start();

  /// \brief Waits (wall-clock bounded) until `pred()` holds, while the
  /// event loop keeps delivering.  Returns the final pred() value.
  /// Requires Start().
  bool RunUntil(const std::function<bool()>& pred, int64_t timeout_us);

  /// \brief Stops the event loop: waits up to `drain_timeout_us` for
  /// quiescence, then joins the thread and closes every connection
  /// (listeners stay bound for a later Start()).
  void Stop(int64_t drain_timeout_us = 2'000'000);

  /// \brief Start() + wait for quiescence + Stop().  Returns elapsed
  /// wall µs.  The single-instance equivalent of ThreadedNetwork::Run.
  Result<int64_t> Run();

  /// \brief Wall-clock µs since this network was constructed.
  int64_t now_us() const override;

  /// \brief No-op: time is real here.
  void ChargeCompute(int64_t micros) override { (void)micros; }

  NetworkStats stats() const override;
  void ResetStats() override;

  TcpStats tcp_stats() const;

 private:
  struct PeerState {
    std::string id;
    Handler handler;
    int listen_fd = -1;
    uint16_t port = 0;
  };
  // One staged outbound frame; `counted` means outstanding_ was
  // incremented for it and must be released exactly once — on abandon,
  // on flush (remote destination), or after the handler runs (local
  // destination, tracked via the origin token on the frame itself).
  struct OutFrame {
    std::string bytes;
    size_t offset = 0;  // bytes already written
    bool local_dest = false;
    bool counted = false;
  };
  // Outgoing connection to one destination peer.
  struct OutConn {
    std::string dest;
    int fd = -1;
    bool connecting = false;
    int attempts = 0;
    int64_t next_attempt_us = 0;
    std::deque<OutFrame> queue;
  };
  // Accepted connection feeding one local peer's listener.
  struct InConn {
    int fd = -1;
    std::string peer;  // local peer the listener belongs to
    std::string inbuf;
  };
  // A not-yet-due timer or jitter-delayed frame.
  struct PendingEntry {
    TimerId id = 0;  // 0 for delayed frames
    std::string peer;
    TimerCallback cb;
    // Delayed frame: re-staged onto `peer`'s out-connection when due.
    std::string frame;
    bool is_frame = false;
    bool local_dest = false;
  };
  struct Delivery {
    std::string peer;
    Message msg;
    bool counted = false;  // origin token was ours
  };

  // Self-closing wakeup pipe.  The fds are written once at construction
  // and closed at destruction; Wakeup() may therefore poke the write end
  // from any thread without holding mutex_.
  struct WakeupPipe {
    WakeupPipe();
    ~WakeupPipe();
    int read_fd = -1;
    int write_fd = -1;
  };

  Status BindListener(PeerState* peer) REQUIRES(mutex_);
  void StageFrame(const std::string& dest, std::string frame,
                  bool local_dest) REQUIRES(mutex_);
  void StartConnect(OutConn* conn) REQUIRES(mutex_);
  void AbandonConn(OutConn* conn, bool retry) REQUIRES(mutex_);
  void FlushConn(OutConn* conn) REQUIRES(mutex_);
  void DecrementOutstanding() REQUIRES(mutex_);
  void Wakeup();
  void LoopThread();
  int64_t NextDueUs() const REQUIRES(mutex_);

  const Options options_;
  const uint64_t origin_token_;

  // Lock hierarchy (DESIGN.md §12): mutex_ is a leaf.  The loop thread
  // releases it around every handler/timer callback, so re-entrant
  // Send()/ScheduleTimer() calls never nest acquisitions.
  mutable Mutex mutex_;
  CondVar quiescent_cv_;
  std::map<std::string, PeerState> peers_ GUARDED_BY(mutex_);
  std::map<std::string, std::string> remote_peers_
      GUARDED_BY(mutex_);                                // id -> host:port
  std::map<std::string, OutConn> out_conns_ GUARDED_BY(mutex_);  // by dest
  std::map<int, InConn> in_conns_ GUARDED_BY(mutex_);            // by fd
  std::multimap<int64_t, PendingEntry> pending_
      GUARDED_BY(mutex_);  // due wall µs
  TimerId next_timer_id_ GUARDED_BY(mutex_) = 1;
  std::set<TimerId> live_timers_ GUARDED_BY(mutex_);
  std::set<TimerId> cancelled_timers_ GUARDED_BY(mutex_);
  int64_t outstanding_ GUARDED_BY(mutex_) = 0;
  bool running_ GUARDED_BY(mutex_) = false;
  bool stopping_ GUARDED_BY(mutex_) = false;
  NetworkStats stats_ GUARDED_BY(mutex_);
  TcpStats tcp_stats_ GUARDED_BY(mutex_);
  FaultInjector faults_ GUARDED_BY(mutex_);

  const WakeupPipe wakeup_;
  // Joined by whichever Stop() call claimed it under mutex_ (the claim
  // is what makes concurrent Stop()s safe: only one joins).
  std::thread loop_ GUARDED_BY(mutex_);

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace hyperion

#endif  // HYPERION_P2P_TCP_NETWORK_H_
