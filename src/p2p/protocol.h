// Session-level types for the distributed cover protocol (paper §6.3).
//
// A cover session runs in two phases:
//
// 1. Information gathering — the initiator P1 computes the partitions of
//    its hop constraints and forwards their attribute-set summaries; each
//    peer merges the incoming summaries with its own partitions (inferred
//    partitions) and forwards.  Only attribute sets move, never mappings.
//    The penultimate peer, which sees the final merge, distributes the
//    resulting plan to every participant.
//
// 2. Computation — per inferred partition, the peer owning the
//    partition's last hop joins its local tables and streams the rows in
//    cache-sized batches toward P1; each intermediate peer joins incoming
//    batches with its own tables, projects onto what is still needed, and
//    streams on.  The partition's first peer projects onto the endpoint
//    attributes and delivers final rows to the initiator, which
//    recombines partitions into the full cover
//    (CoverEngine::CombinePartitionCovers).

#ifndef HYPERION_P2P_PROTOCOL_H_
#define HYPERION_P2P_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/compose.h"
#include "core/cover_engine.h"
#include "core/mapping_table.h"

namespace hyperion {

/// \brief Per-session tuning.
struct SessionOptions {
  /// Per-peer mapping cache: a peer streams a batch whenever this many
  /// result mappings have accumulated (paper §7's cache-size knob).
  size_t cache_capacity = 64;
  /// Options for the local join/projection steps.
  ComposeOptions compose;
  /// Semi-join prefiltering: gathering-phase messages carry Bloom-filter
  /// summaries of producible values so downstream peers drop rows that
  /// can never join before computing or streaming (sound: false positives
  /// only keep extra rows, and the join itself stays exact).
  bool semijoin_filters = false;
  /// Whether the initiator materializes the full cover (the Cartesian
  /// product of the per-partition covers, §6.3.2's final step).  Disable
  /// for workloads with several large partitions — the product explodes
  /// combinatorially and consumers usually want the per-partition covers
  /// anyway (the paper's B2B experiment reports those).
  bool combine_partitions = true;
  /// Reliability: initial ack timeout for sequenced session messages
  /// (doubles on every retransmission).  Carried in the SessionSpec so
  /// every participant uses the schedule the initiator chose.
  int64_t retransmit_timeout_us = 500'000;
  /// Retransmissions after the first attempt before the destination is
  /// declared unreachable and the session fails with its name.
  int max_retransmits = 5;
  /// Initiator-side deadline: if the session has not completed after this
  /// much network time, it fails with DeadlineExceeded naming the
  /// partitions (and their terminal peers) still outstanding.  0 disables.
  int64_t session_deadline_us = 120'000'000;
};

/// \brief Timing/traffic outcomes of a session, in virtual microseconds.
struct SessionStats {
  int64_t start_us = 0;
  int64_t first_row_us = -1;   // first cover row reaching the initiator
  int64_t complete_us = -1;    // last row (cover fully assembled)
  std::map<size_t, int64_t> partition_first_row_us;
  std::map<size_t, int64_t> partition_complete_us;
  size_t rows_received = 0;    // per-partition rows seen by the initiator
};

/// \brief Final state of a cover session at the initiator.
struct SessionResult {
  bool done = false;
  Status error;  // non-OK when the session failed
  MappingTable cover;
  /// Per-partition covers in plan order (keep attributes only).
  std::vector<FreeTable> partition_covers;
  std::vector<std::vector<std::string>> partition_keep_names;
  std::vector<bool> partition_satisfiable;
  SessionStats stats;
};

}  // namespace hyperion

#endif  // HYPERION_P2P_PROTOCOL_H_
