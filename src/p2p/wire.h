// Wire codec for peer messages: the byte format TcpNetwork puts on real
// sockets (tcp_network.h).  The in-process transports pass Message
// objects around directly; a socket transport needs every payload —
// mappings, schemas, domains, Bloom filters — round-tripped through
// bytes with full fidelity, because the conformance suite demands
// byte-identical covers no matter which transport carried the session.
//
// Format (version 2, all integers little-endian, fixed width):
//
//   message  := u8 version | u8 payload-tag | str from | str to | payload
//   str      := u32 length | bytes
//   value    := u8 type (0 string, 1 int) | str / i64
//   domain   := u8 kind (0 all-strings, 1 all-ints, 2 enumerated)
//               | str name | [u32 count | value...]      (enumerated only)
//   cell     := u8 tag (0 constant, 1 variable)
//               | value / (u32 var | u32 n-exclusions | value...)
//
// Frames on a connection are length-prefixed:
//
//   frame := u32 payload-length | u64 origin-token | payload bytes
//
// The origin token identifies the sending TcpNetwork instance so a
// receiver can tell its own in-flight frames (which count toward its
// quiescence accounting) from frames of a remote instance.

#ifndef HYPERION_P2P_WIRE_H_
#define HYPERION_P2P_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "p2p/message.h"

namespace hyperion {
namespace wire {

// Version 2: ring-epoch fields on cluster messages and the rebalance
// handoff tags (15–17).  Versions never mix on one cluster — peers run
// the same build — so decoding rejects any other version outright.
inline constexpr uint8_t kWireVersion = 2;

/// \brief Frame header: u32 payload length + u64 origin token.
inline constexpr size_t kFrameHeaderBytes = 12;

/// \brief Upper bound on one frame's payload; larger lengths mean a
/// corrupt or hostile stream and fail the connection loudly.
inline constexpr size_t kMaxFramePayloadBytes = 256u << 20;  // 256 MB

/// \brief Serializes `msg` (envelope + payload) to versioned wire bytes.
std::string EncodeMessage(const Message& msg);

/// \brief Parses wire bytes back into a Message.  Fails with
/// InvalidArgument on truncated, overlong, or malformed input — never
/// crashes on hostile bytes.
Result<Message> DecodeMessage(std::string_view bytes);

/// \brief Appends a length-prefixed frame carrying `payload` to `out`.
void AppendFrame(std::string_view payload, uint64_t origin_token,
                 std::string* out);

/// \brief Outcome of scanning a receive buffer for one complete frame.
struct FrameView {
  bool complete = false;      // false: need more bytes
  std::string_view payload;   // valid when complete
  uint64_t origin_token = 0;  // valid when complete
  size_t consumed = 0;        // bytes to drop from the buffer front
};

/// \brief Examines the front of `buffer` for a complete frame.  Fails
/// with InvalidArgument when the header declares an oversized payload.
Result<FrameView> PeekFrame(std::string_view buffer);

}  // namespace wire
}  // namespace hyperion

#endif  // HYPERION_P2P_WIRE_H_
