// FaultInjector: the decision engine both transports share for applying
// a FaultPlan.  Given a (from, to, depart-time) triple it decides —
// deterministically from the plan's seed and the call sequence — whether
// the message is dropped, how many copies are delivered, and how much
// extra delay each copy suffers.  The caller owns all bookkeeping
// (stats, metrics, actually enqueueing copies); the injector only rolls
// the dice, so SimNetwork and ThreadedNetwork cannot drift apart in how
// they interpret a plan.

#ifndef HYPERION_P2P_FAULT_H_
#define HYPERION_P2P_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "p2p/network_interface.h"

namespace hyperion {

/// \brief Deterministic per-send fault decisions for a FaultPlan.
/// Not thread-safe; callers serialize access (SimNetwork is
/// single-threaded, ThreadedNetwork consults it under its mutex).
class FaultInjector {
 public:
  FaultInjector() : rng_(1) {}

  /// \brief Installs `plan`; reseeds the PRNG from plan.seed.
  void SetPlan(FaultPlan plan) {
    plan_ = std::move(plan);
    active_ = !plan_.empty();
    rng_ = Rng(plan_.seed == 0 ? 1 : plan_.seed);
  }

  /// \brief Whether any fault can ever be injected.
  bool active() const { return active_; }

  const FaultPlan& plan() const { return plan_; }

  /// \brief Outcome of one Send through the fault layer.
  struct SendDecision {
    bool dropped = false;
    /// Extra delay per delivered copy; size() is the copy count
    /// (1 normally, 2 when duplicated, 0 when dropped).
    std::vector<int64_t> copy_jitter_us;
  };

  /// \brief Rolls drop/duplicate/jitter for one message departing on
  /// (from → to) at `depart_us`.  Consumes PRNG state even for the
  /// never-delivered cases so decisions stay aligned with the send
  /// sequence.
  SendDecision OnSend(const std::string& from, const std::string& to,
                      int64_t depart_us);

  /// \brief Whether `peer` is crashed at `t_us` (delivery/timer gate).
  bool PeerDownAt(const std::string& peer, int64_t t_us) const {
    return active_ && plan_.PeerDownAt(peer, t_us);
  }

 private:
  FaultPlan plan_;
  Rng rng_;
  bool active_ = false;
};

}  // namespace hyperion

#endif  // HYPERION_P2P_FAULT_H_
