#include "p2p/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "p2p/wire.h"

namespace hyperion {

namespace {

void RecordTcpCounter(const char* name, uint64_t n = 1) {
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry::Default()
        .GetCounter(name, {{"network", "tcp"}})
        ->Add(n);
  }
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Fills `addr` from a numeric IPv4 "host" + port; false on bad input.
bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host == "localhost" ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, h, &addr->sin_addr) == 1;
}

// Splits "host:port"; false on malformed input.
bool SplitHostPort(const std::string& host_port, std::string* host,
                   uint16_t* port) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    return false;
  }
  *host = host_port.substr(0, colon);
  long p = 0;
  for (size_t i = colon + 1; i < host_port.size(); ++i) {
    char c = host_port[i];
    if (c < '0' || c > '9') return false;
    p = p * 10 + (c - '0');
    if (p > 65535) return false;
  }
  *port = static_cast<uint16_t>(p);
  return p != 0;
}

// Per-instance origin token: distinguishes this network's frames from a
// remote instance's even when both run on one host (mixes pid with a
// process-local counter so two instances in one process differ too).
uint64_t NewOriginToken() {
  static std::atomic<uint64_t> counter{1};
  return (static_cast<uint64_t>(::getpid()) << 32) ^
         counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TcpNetwork::WakeupPipe::WakeupPipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    SetNonBlocking(fds[0]);
    SetNonBlocking(fds[1]);
    read_fd = fds[0];
    write_fd = fds[1];
  }
}

TcpNetwork::WakeupPipe::~WakeupPipe() {
  if (read_fd >= 0) ::close(read_fd);
  if (write_fd >= 0) ::close(write_fd);
}

TcpNetwork::TcpNetwork() : TcpNetwork(Options()) {}

TcpNetwork::TcpNetwork(Options options)
    : options_(std::move(options)),
      origin_token_(NewOriginToken()),
      remote_peers_(options_.remote_peers) {}

TcpNetwork::~TcpNetwork() {
  Stop(/*drain_timeout_us=*/0);
  MutexLock lock(mutex_);
  for (auto& [id, peer] : peers_) {
    (void)id;
    if (peer.listen_fd >= 0) ::close(peer.listen_fd);
  }
}

Status TcpNetwork::BindListener(PeerState* peer) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  uint16_t want_port = options_.base_port == 0
                           ? 0
                           : static_cast<uint16_t>(options_.base_port +
                                                   peers_.size() - 1);
  sockaddr_in addr;
  if (!FillAddr(options_.listen_host, want_port, &addr)) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host '" +
                                   options_.listen_host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    Status s = Status::Internal("bind/listen on " + options_.listen_host +
                                ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname(): ") +
                            std::strerror(errno));
  }
  SetNonBlocking(fd);
  peer->listen_fd = fd;
  peer->port = ntohs(addr.sin_port);
  return Status::OK();
}

Status TcpNetwork::RegisterPeer(const std::string& id, Handler handler) {
  if (id.empty()) {
    return Status::InvalidArgument("peer id must be nonempty");
  }
  MutexLock lock(mutex_);
  if (running_) {
    return Status::FailedPrecondition(
        "cannot register peers while the network is running");
  }
  if (peers_.count(id)) {
    return Status::AlreadyExists("peer '" + id + "' already registered");
  }
  PeerState peer;
  peer.id = id;
  peer.handler = std::move(handler);
  auto it = peers_.emplace(id, std::move(peer)).first;
  Status bound = BindListener(&it->second);
  if (!bound.ok()) {
    peers_.erase(it);
    return bound;
  }
  return Status::OK();
}

Result<uint16_t> TcpNetwork::ListenPort(const std::string& peer) const {
  MutexLock lock(mutex_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    return Status::NotFound("unknown peer '" + peer + "'");
  }
  return it->second.port;
}

void TcpNetwork::SetRemotePeer(const std::string& id,
                               const std::string& host_port) {
  MutexLock lock(mutex_);
  remote_peers_[id] = host_port;
}

void TcpNetwork::SetFaultPlan(FaultPlan plan) {
  MutexLock lock(mutex_);
  faults_.SetPlan(std::move(plan));
}

void TcpNetwork::DecrementOutstanding() {
  if (--outstanding_ == 0) quiescent_cv_.NotifyAll();
}

void TcpNetwork::Wakeup() {
  if (wakeup_.write_fd < 0) return;
  char b = 1;
  // A full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wakeup_.write_fd, &b, 1);
}

void TcpNetwork::StageFrame(const std::string& dest, std::string frame,
                            bool local_dest) {
  OutConn& conn = out_conns_[dest];
  conn.dest = dest;
  OutFrame out;
  out.bytes = std::move(frame);
  out.local_dest = local_dest;
  out.counted = true;
  conn.queue.push_back(std::move(out));
}

Status TcpNetwork::Send(Message msg) {
  size_t bytes = msg.ByteSize();
  std::string payload = wire::EncodeMessage(msg);
  MutexLock lock(mutex_);
  bool local_dest = peers_.count(msg.to) > 0;
  if (!local_dest && !remote_peers_.count(msg.to)) {
    return Status::NotFound("unknown destination peer '" + msg.to + "'");
  }
  RecordNetworkSend("tcp", msg, bytes);
  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  stats_.messages_by_type[msg.TypeName()] += 1;

  FaultInjector::SendDecision decision =
      faults_.OnSend(msg.from, msg.to, now_us());
  if (decision.dropped) {
    stats_.drops_injected += 1;
    RecordFaultEvent("net.drops_injected", "tcp");
    return Status::OK();
  }
  const size_t copies = decision.copy_jitter_us.size();
  if (copies > 1) {
    stats_.duplicates_injected += copies - 1;
    RecordFaultEvent("net.duplicates_injected", "tcp");
  }
  std::string frame;
  wire::AppendFrame(payload, origin_token_, &frame);
  for (size_t i = 0; i < copies; ++i) {
    ++outstanding_;
    int64_t jitter = decision.copy_jitter_us[i];
    if (jitter > 0) {
      PendingEntry entry;
      entry.peer = msg.to;
      entry.frame = frame;
      entry.is_frame = true;
      entry.local_dest = local_dest;
      pending_.emplace(now_us() + jitter, std::move(entry));
    } else {
      StageFrame(msg.to, frame, local_dest);
    }
  }
  Wakeup();
  return Status::OK();
}

Result<Network::TimerId> TcpNetwork::ScheduleTimer(const std::string& peer,
                                                   int64_t delay_us,
                                                   TimerCallback cb) {
  MutexLock lock(mutex_);
  if (!peers_.count(peer)) {
    return Status::NotFound("unknown timer peer '" + peer + "'");
  }
  if (delay_us < 0) {
    return Status::InvalidArgument("timer delay must be >= 0");
  }
  PendingEntry entry;
  entry.id = next_timer_id_++;
  entry.peer = peer;
  entry.cb = std::move(cb);
  TimerId id = entry.id;
  live_timers_.insert(id);
  ++outstanding_;
  pending_.emplace(now_us() + delay_us, std::move(entry));
  Wakeup();
  return id;
}

void TcpNetwork::CancelTimer(TimerId id) {
  if (id == 0) return;
  MutexLock lock(mutex_);
  if (!live_timers_.count(id)) return;  // already ran (or never existed)
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->second.id == id) {
      pending_.erase(it);
      live_timers_.erase(id);
      DecrementOutstanding();
      return;
    }
  }
  // Due but not yet fired (the loop is between popping and running it):
  // mark it so the loop skips the callback.
  cancelled_timers_.insert(id);
}

void TcpNetwork::StartConnect(OutConn* conn) {
  std::string host;
  uint16_t port = 0;
  auto local = peers_.find(conn->dest);
  if (local != peers_.end()) {
    host = options_.listen_host;
    port = local->second.port;
  } else {
    auto remote = remote_peers_.find(conn->dest);
    if (remote == remote_peers_.end() ||
        !SplitHostPort(remote->second, &host, &port)) {
      AbandonConn(conn, /*retry=*/false);
      return;
    }
  }
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    AbandonConn(conn, /*retry=*/false);
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    AbandonConn(conn, /*retry=*/false);
    return;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    conn->fd = fd;
    conn->connecting = false;
    if (conn->attempts > 0) {
      tcp_stats_.reconnects += 1;
      RecordTcpCounter("net.tcp.reconnects");
    }
    conn->attempts = 0;
    tcp_stats_.connects += 1;
    RecordTcpCounter("net.tcp.connects");
    FlushConn(conn);
    return;
  }
  if (errno == EINPROGRESS) {
    conn->fd = fd;
    conn->connecting = true;
    return;
  }
  ::close(fd);
  conn->attempts += 1;
  int64_t backoff = options_.reconnect_backoff_us;
  for (int i = 1; i < conn->attempts &&
                  backoff < options_.max_reconnect_backoff_us;
       ++i) {
    backoff *= 2;
  }
  if (backoff > options_.max_reconnect_backoff_us) {
    backoff = options_.max_reconnect_backoff_us;
  }
  conn->next_attempt_us = now_us() + backoff;
}

void TcpNetwork::AbandonConn(OutConn* conn, bool retry) {
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->connecting = false;
  // The front frame may be partially written: its bytes on the wire are
  // now a truncated stream the receiver discards, so every queued frame
  // is lost here.  The reliability layer (peer.h) sees plain loss and
  // retransmits.
  for (OutFrame& frame : conn->queue) {
    tcp_stats_.connect_failures += 1;
    RecordTcpCounter("net.tcp.connect_failures");
    if (frame.counted) DecrementOutstanding();
  }
  conn->queue.clear();
  conn->attempts = 0;
  conn->next_attempt_us =
      now_us() + (retry ? options_.max_reconnect_backoff_us : 0);
}

void TcpNetwork::FlushConn(OutConn* conn) {
  while (!conn->queue.empty()) {
    OutFrame& frame = conn->queue.front();
    while (frame.offset < frame.bytes.size()) {
      ssize_t n = ::send(conn->fd, frame.bytes.data() + frame.offset,
                         frame.bytes.size() - frame.offset, MSG_NOSIGNAL);
      if (n > 0) {
        frame.offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // poll for POLLOUT
      }
      // Broken connection: the stream is corrupt mid-frame — drop the
      // queue and let the reliability layer retransmit.
      conn->attempts += 1;
      AbandonConn(conn, /*retry=*/true);
      return;
    }
    tcp_stats_.frames_sent += 1;
    tcp_stats_.bytes_sent += frame.bytes.size();
    RecordTcpCounter("net.tcp.frames_sent");
    RecordTcpCounter("net.tcp.bytes_sent", frame.bytes.size());
    // Local frames stay counted until their handler runs (the frame
    // comes back through our own listener); remote frames leave our
    // quiescence scope once the kernel has all their bytes.
    if (frame.counted && !frame.local_dest) DecrementOutstanding();
    conn->queue.pop_front();
  }
}

int64_t TcpNetwork::NextDueUs() const {
  int64_t due = -1;
  if (!pending_.empty()) due = pending_.begin()->first;
  for (const auto& [dest, conn] : out_conns_) {
    (void)dest;
    if (conn.fd >= 0 || conn.connecting || conn.queue.empty()) continue;
    if (due < 0 || conn.next_attempt_us < due) due = conn.next_attempt_us;
  }
  return due;
}

void TcpNetwork::LoopThread() {
  std::vector<pollfd> fds;
  // Parallel to `fds`: what each entry is.
  enum class FdKind { kWakeup, kListener, kIn, kOut };
  struct FdMeta {
    FdKind kind;
    std::string key;  // peer id (listener/out) or "" (wakeup); fd for in
    int fd;
  };
  std::vector<FdMeta> meta;

  MutexLock lock(mutex_);
  while (!stopping_) {
    int64_t now = now_us();

    // 1. Connection maintenance: start due connects, abandon hopeless
    //    destinations.
    for (auto& [dest, conn] : out_conns_) {
      (void)dest;
      if (conn.fd >= 0 || conn.connecting || conn.queue.empty()) continue;
      if (conn.attempts >= options_.max_connect_attempts) {
        AbandonConn(&conn, /*retry=*/false);
        continue;
      }
      if (now >= conn.next_attempt_us) StartConnect(&conn);
    }

    // 2. Fire due pending entries (timers and jitter-delayed frames).
    while (!pending_.empty() && pending_.begin()->first <= now_us()) {
      PendingEntry entry = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      if (entry.is_frame) {
        // Jitter elapsed: the copy hits the wire now.  Crash windows are
        // not checked here — they gate delivery at the receiving end.
        StageFrame(entry.peer, std::move(entry.frame), entry.local_dest);
        continue;
      }
      live_timers_.erase(entry.id);
      if (cancelled_timers_.erase(entry.id) > 0) {
        DecrementOutstanding();
        continue;
      }
      if (faults_.PeerDownAt(entry.peer, now_us())) {
        stats_.crash_discards += 1;
        RecordFaultEvent("net.crash_discards", "tcp");
        DecrementOutstanding();
        continue;
      }
      stats_.timers_fired += 1;
      lock.Unlock();
      entry.cb();  // may Send()/ScheduleTimer(), re-locking mutex_
      lock.Lock();
      DecrementOutstanding();
    }

    // 3. Build the poll set.
    fds.clear();
    meta.clear();
    fds.push_back({wakeup_.read_fd, POLLIN, 0});
    meta.push_back({FdKind::kWakeup, "", wakeup_.read_fd});
    for (auto& [id, peer] : peers_) {
      fds.push_back({peer.listen_fd, POLLIN, 0});
      meta.push_back({FdKind::kListener, id, peer.listen_fd});
    }
    for (auto& [fd, conn] : in_conns_) {
      (void)conn;
      fds.push_back({fd, POLLIN, 0});
      meta.push_back({FdKind::kIn, "", fd});
    }
    for (auto& [dest, conn] : out_conns_) {
      if (conn.fd < 0) continue;
      short events = POLLIN;  // remote close shows up as POLLIN/EOF
      if (conn.connecting || !conn.queue.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      meta.push_back({FdKind::kOut, dest, conn.fd});
    }
    int64_t due = NextDueUs();
    int timeout_ms = -1;
    if (due >= 0) {
      int64_t wait = due - now_us();
      timeout_ms = wait <= 0 ? 0 : static_cast<int>((wait + 999) / 1000);
    }

    lock.Unlock();
    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    lock.Lock();
    if (stopping_) break;
    if (ready <= 0) continue;  // timeout / EINTR: re-run maintenance

    std::vector<Delivery> deliveries;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const FdMeta& m = meta[i];
      switch (m.kind) {
        case FdKind::kWakeup: {
          char buf[256];
          while (::read(wakeup_.read_fd, buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case FdKind::kListener: {
          auto peer = peers_.find(m.key);
          if (peer == peers_.end()) break;
          for (;;) {
            int fd = ::accept(peer->second.listen_fd, nullptr, nullptr);
            if (fd < 0) break;
            SetNonBlocking(fd);
            SetNoDelay(fd);
            InConn conn;
            conn.fd = fd;
            conn.peer = m.key;
            in_conns_.emplace(fd, std::move(conn));
          }
          break;
        }
        case FdKind::kIn: {
          auto it = in_conns_.find(m.fd);
          if (it == in_conns_.end()) break;
          InConn& conn = it->second;
          bool closed = false;
          char buf[65536];
          for (;;) {
            ssize_t n = ::read(conn.fd, buf, sizeof(buf));
            if (n > 0) {
              conn.inbuf.append(buf, static_cast<size_t>(n));
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            closed = true;  // EOF or error; partial frame is discarded
            break;
          }
          bool corrupt = false;
          for (;;) {
            Result<wire::FrameView> peeked = wire::PeekFrame(conn.inbuf);
            if (!peeked.ok()) {
              corrupt = true;
              break;
            }
            const wire::FrameView& view = peeked.value();
            if (!view.complete) break;
            tcp_stats_.frames_received += 1;
            tcp_stats_.bytes_received += view.consumed;
            RecordTcpCounter("net.tcp.frames_received");
            RecordTcpCounter("net.tcp.bytes_received", view.consumed);
            Result<Message> msg = wire::DecodeMessage(view.payload);
            if (!msg.ok()) {
              corrupt = true;
              break;
            }
            Delivery d;
            d.peer = conn.peer;
            d.msg = std::move(msg).value();
            d.counted = view.origin_token == origin_token_;
            deliveries.push_back(std::move(d));
            conn.inbuf.erase(0, view.consumed);
          }
          if (corrupt) {
            tcp_stats_.frames_bad += 1;
            RecordTcpCounter("net.tcp.frames_bad");
            closed = true;
          }
          if (closed) {
            ::close(conn.fd);
            in_conns_.erase(it);
          }
          break;
        }
        case FdKind::kOut: {
          auto it = out_conns_.find(m.key);
          if (it == out_conns_.end() || it->second.fd != m.fd) break;
          OutConn& conn = it->second;
          if (conn.connecting) {
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
              ::close(conn.fd);
              conn.fd = -1;
              conn.connecting = false;
              conn.attempts += 1;
              int64_t backoff = options_.reconnect_backoff_us;
              for (int a = 1; a < conn.attempts &&
                              backoff < options_.max_reconnect_backoff_us;
                   ++a) {
                backoff *= 2;
              }
              if (backoff > options_.max_reconnect_backoff_us) {
                backoff = options_.max_reconnect_backoff_us;
              }
              conn.next_attempt_us = now_us() + backoff;
              break;
            }
            conn.connecting = false;
            if (conn.attempts > 0) {
              tcp_stats_.reconnects += 1;
              RecordTcpCounter("net.tcp.reconnects");
            }
            conn.attempts = 0;
            tcp_stats_.connects += 1;
            RecordTcpCounter("net.tcp.connects");
          }
          if (fds[i].revents & (POLLERR | POLLHUP)) {
            conn.attempts += 1;
            AbandonConn(&conn, /*retry=*/true);
            break;
          }
          FlushConn(&conn);
          break;
        }
      }
    }

    // 4. Run handlers for the parsed frames, one at a time (the single
    //    loop thread is what serializes all handlers).
    for (Delivery& d : deliveries) {
      auto peer = peers_.find(d.peer);
      if (peer == peers_.end()) {
        if (d.counted) DecrementOutstanding();
        continue;
      }
      if (faults_.PeerDownAt(d.peer, now_us())) {
        stats_.crash_discards += 1;
        RecordFaultEvent("net.crash_discards", "tcp");
        if (d.counted) DecrementOutstanding();
        continue;
      }
      Handler handler = peer->second.handler;
      lock.Unlock();
      handler(d.msg);  // may Send(), re-locking mutex_
      lock.Lock();
      if (d.counted) DecrementOutstanding();
      if (stopping_) return;
    }
  }
}

Status TcpNetwork::Start() {
  MutexLock lock(mutex_);
  if (wakeup_.read_fd < 0) {
    return Status::Internal("wakeup pipe unavailable");
  }
  if (running_) return Status::OK();
  running_ = true;
  stopping_ = false;
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

bool TcpNetwork::RunUntil(const std::function<bool()>& pred,
                          int64_t timeout_us) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  for (;;) {
    if (pred()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    MutexLock lock(mutex_);
    quiescent_cv_.WaitFor(mutex_, std::chrono::milliseconds(1));
  }
}

void TcpNetwork::Stop(int64_t drain_timeout_us) {
  std::thread loop;
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    if (drain_timeout_us > 0) {
      quiescent_cv_.WaitFor(mutex_, std::chrono::microseconds(drain_timeout_us),
                            [this]() REQUIRES(mutex_) {
                              return outstanding_ == 0;
                            });
    }
    // Claim the join under the lock (-Wthread-safety caught loop_ being
    // joined with no lock held: two concurrent Stop() calls would both
    // reach join() on the same std::thread).
    if (stopping_ || !loop_.joinable()) return;
    stopping_ = true;
    loop = std::move(loop_);
  }
  Wakeup();
  loop.join();
  MutexLock lock(mutex_);
  for (auto& [fd, conn] : in_conns_) {
    (void)conn;
    ::close(fd);
  }
  in_conns_.clear();
  for (auto& [dest, conn] : out_conns_) {
    (void)dest;
    if (conn.fd >= 0) ::close(conn.fd);
  }
  out_conns_.clear();
  pending_.clear();
  live_timers_.clear();
  cancelled_timers_.clear();
  outstanding_ = 0;
  running_ = false;
  stopping_ = false;
  quiescent_cv_.NotifyAll();
}

Result<int64_t> TcpNetwork::Run() {
  auto start = std::chrono::steady_clock::now();
  {
    MutexLock lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition("Run() is not reentrant");
    }
  }
  HYP_RETURN_IF_ERROR(Start());
  {
    MutexLock lock(mutex_);
    quiescent_cv_.Wait(mutex_, [this]() REQUIRES(mutex_) {
      return outstanding_ == 0 || stopping_;
    });
  }
  Stop(/*drain_timeout_us=*/0);
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t TcpNetwork::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

NetworkStats TcpNetwork::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void TcpNetwork::ResetStats() {
  MutexLock lock(mutex_);
  stats_ = NetworkStats();
  tcp_stats_ = TcpStats();
}

TcpStats TcpNetwork::tcp_stats() const {
  MutexLock lock(mutex_);
  return tcp_stats_;
}

}  // namespace hyperion
