#include "p2p/peer.h"

#include <algorithm>
#include <cassert>

#include "common/hash_util.h"
#include "core/partition.h"
#include "core/query.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperion {

namespace {

// Shorthand for protocol counters in the default registry.
inline void CountProto(const char* name, uint64_t n = 1) {
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry::Default().GetCounter(name)->Add(n);
  }
}

// Structured span/event record for the session tracer.  `net` supplies
// the virtual clock; everything else identifies the step.
void TraceProto(const Network* net, const std::string& peer,
                const char* kind, uint64_t session, int64_t partition,
                int hop, int64_t value, std::string detail = {}) {
  if constexpr (obs::kMetricsEnabled) {
    obs::SessionTracer& tracer = obs::SessionTracer::Default();
    if (!tracer.enabled()) return;
    obs::TraceEvent ev;
    ev.virtual_us = net == nullptr ? 0 : net->now_us();
    ev.session = session;
    ev.partition = partition;
    ev.hop = hop;
    ev.peer = peer;
    ev.kind = kind;
    ev.detail = std::move(detail);
    ev.value = value;
    tracer.Record(std::move(ev));
  }
}

// Deduplicating append preserving first-seen order.
void AppendUnique(std::vector<std::string>* out, const std::string& name) {
  if (std::find(out->begin(), out->end(), name) == out->end()) {
    out->push_back(name);
  }
}

AttributeSet AttributeSetFromNames(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const std::string& n : names) attrs.emplace_back(Attribute::String(n));
  return AttributeSet(std::move(attrs));
}

// Endpoint attributes the partition constrains, x-names first.
std::vector<std::string> KeepNamesFor(const PartitionSummary& partition,
                                      const SessionSpec& spec) {
  std::set<std::string> in_partition(partition.attr_names.begin(),
                                     partition.attr_names.end());
  std::vector<std::string> keep;
  for (const std::string& n : spec.x_names) {
    if (in_partition.count(n)) AppendUnique(&keep, n);
  }
  for (const std::string& n : spec.y_names) {
    if (in_partition.count(n)) AppendUnique(&keep, n);
  }
  return keep;
}

// Attributes peer `hop` must still ship upstream: the endpoint attributes
// plus everything constraints at earlier hops mention.
std::vector<std::string> NeededNamesFor(const PartitionSummary& partition,
                                        const SessionSpec& spec, size_t hop) {
  std::vector<std::string> needed = KeepNamesFor(partition, spec);
  for (const PartitionMemberRef& m : partition.members) {
    if (m.hop < hop) {
      for (const std::string& n : m.attr_names) AppendUnique(&needed, n);
    }
  }
  return needed;
}

}  // namespace

PeerNode::PeerNode(std::string id, AttributeSet attributes)
    : id_(std::move(id)), attributes_(std::move(attributes)) {}

Status PeerNode::Attach(Network* network) {
  if (network == nullptr) {
    return Status::InvalidArgument("null network");
  }
  HYP_RETURN_IF_ERROR(network->RegisterPeer(
      id_, [this](const Message& msg) { HandleMessage(msg); }));
  network_ = network;
  return Status::OK();
}

Status PeerNode::AddConstraintTo(const std::string& neighbor,
                                 MappingConstraint c) {
  if (!c.valid()) {
    return Status::InvalidArgument("invalid constraint");
  }
  if (c.name().empty()) {
    return Status::InvalidArgument(
        "constraints must be named to participate in the protocol");
  }
  if (!attributes_.ContainsAll(c.x_schema().ToSet())) {
    return Status::InvalidArgument(
        "constraint X side " + c.x_schema().ToString() +
        " is not within peer '" + id_ + "' attributes");
  }
  std::vector<MappingConstraint>& list = constraints_[neighbor];
  for (const MappingConstraint& existing : list) {
    if (existing.name() == c.name()) {
      return Status::AlreadyExists("constraint '" + c.name() +
                                   "' already stored toward '" + neighbor +
                                   "'");
    }
  }
  list.push_back(std::move(c));
  return Status::OK();
}

const std::vector<MappingConstraint>& PeerNode::ConstraintsTo(
    const std::string& neighbor) const {
  static const std::vector<MappingConstraint> kEmpty;
  auto it = constraints_.find(neighbor);
  return it == constraints_.end() ? kEmpty : it->second;
}

std::vector<std::string> PeerNode::Acquaintances() const {
  std::vector<std::string> out;
  out.reserve(constraints_.size());
  for (const auto& [neighbor, list] : constraints_) {
    (void)list;
    out.push_back(neighbor);
  }
  return out;
}

Status PeerNode::FloodPing(int ttl) {
  if (network_ == nullptr) {
    return Status::FailedPrecondition("peer not attached to a network");
  }
  PingMsg ping;
  ping.ping_id = (std::hash<std::string>{}(id_) & 0xffffff) * 1000 +
                 next_local_id_++;
  ping.origin = id_;
  ping.ttl = ttl;
  ping.hops = 0;
  seen_pings_.insert(ping.ping_id);
  for (const std::string& neighbor : Acquaintances()) {
    HYP_RETURN_IF_ERROR(network_->Send(Message{id_, neighbor, ping}));
  }
  return Status::OK();
}

void PeerNode::HandleMessage(const Message& msg) {
  if (std::holds_alternative<AckMsg>(msg.payload)) {
    OnAck(msg);
    return;
  }
  // Sequenced session messages pass through the reliability layer (ack,
  // dedup, reorder) first; seq 0 marks unsequenced traffic — discovery,
  // searches, locally delivered copies — which dispatches directly.
  uint64_t seq = 0;
  uint64_t partition = 0;
  uint8_t kind = 0;
  SessionId session = 0;
  if (const auto* init = std::get_if<SessionInitMsg>(&msg.payload)) {
    seq = init->seq;
    kind = kRelInit;
    session = init->spec.id;
  } else if (const auto* plan = std::get_if<ComputePlanMsg>(&msg.payload)) {
    seq = plan->seq;
    kind = kRelPlan;
    session = plan->spec.id;
  } else if (const auto* batch = std::get_if<CoverBatchMsg>(&msg.payload)) {
    seq = batch->seq;
    kind = kRelBatch;
    session = batch->session;
    partition = batch->partition;
  } else if (const auto* fin = std::get_if<FinalRowsMsg>(&msg.payload)) {
    seq = fin->seq;
    kind = kRelFinal;
    session = fin->session;
    partition = fin->partition;
  }
  if (seq != 0 && msg.from != id_) {
    AdmitSequenced(msg, kind, session, partition, seq);
    return;
  }
  Dispatch(msg);
}

void PeerNode::Dispatch(const Message& msg) {
  if (std::holds_alternative<PingMsg>(msg.payload)) {
    OnPing(msg);
  } else if (std::holds_alternative<PongMsg>(msg.payload)) {
    OnPong(msg);
  } else if (std::holds_alternative<SessionInitMsg>(msg.payload)) {
    OnSessionInit(msg);
  } else if (std::holds_alternative<ComputePlanMsg>(msg.payload)) {
    OnComputePlan(msg);
  } else if (std::holds_alternative<CoverBatchMsg>(msg.payload)) {
    OnCoverBatch(msg);
  } else if (std::holds_alternative<FinalRowsMsg>(msg.payload)) {
    OnFinalRows(msg);
  } else if (std::holds_alternative<SearchMsg>(msg.payload)) {
    OnSearch(msg);
  } else if (std::holds_alternative<SearchHitMsg>(msg.payload)) {
    OnSearchHit(msg);
  }
}

// ---------------------------------------------------------------------------
// Reliability layer: ack / retransmit / dedup / reorder
// ---------------------------------------------------------------------------

namespace {

// Stamps the channel sequence number into a sequenced payload.
void SetSeq(Message* msg, uint64_t seq) {
  if (auto* init = std::get_if<SessionInitMsg>(&msg->payload)) {
    init->seq = seq;
  } else if (auto* plan = std::get_if<ComputePlanMsg>(&msg->payload)) {
    plan->seq = seq;
  } else if (auto* batch = std::get_if<CoverBatchMsg>(&msg->payload)) {
    batch->seq = seq;
  } else if (auto* fin = std::get_if<FinalRowsMsg>(&msg->payload)) {
    fin->seq = seq;
  }
}

}  // namespace

Status PeerNode::SendReliable(SessionId session, uint8_t kind,
                              uint64_t partition, Message msg,
                              int64_t timeout_us, int max_retransmits,
                              const char* phase,
                              const std::string& initiator) {
  ChannelKey channel{session, kind, partition, msg.to};
  uint64_t seq = ++next_send_seq_[channel];
  SetSeq(&msg, seq);
  SendKey key{session, kind, partition, msg.to, seq};
  OutstandingSend& out = outstanding_sends_[key];
  out.msg = msg;
  out.attempts = 1;
  out.timeout_us = timeout_us > 0 ? timeout_us : 1;
  out.base_timeout_us = out.timeout_us;
  out.max_retransmits = max_retransmits < 0 ? 0 : max_retransmits;
  out.phase = phase;
  out.initiator = initiator;
  Status sent = network_->Send(std::move(msg));
  if (!sent.ok()) {
    outstanding_sends_.erase(key);
    return sent;
  }
  auto timer = network_->ScheduleTimer(
      id_, out.timeout_us, [this, key] { HandleRetransmitTimer(key); });
  if (timer.ok()) outstanding_sends_[key].timer = timer.value();
  return Status::OK();
}

void PeerNode::HandleRetransmitTimer(const SendKey& key) {
  auto it = outstanding_sends_.find(key);
  if (it == outstanding_sends_.end()) return;  // acked in the meantime
  OutstandingSend& out = it->second;
  const auto& [session, kind, partition, to, seq] = key;
  if (out.attempts > out.max_retransmits) {
    Status status = Status::Unavailable(
        "peer '" + to + "' unreachable: no ack after " +
        std::to_string(out.attempts) + " attempts during " + out.phase +
        " of session " + std::to_string(session));
    TraceProto(network_, id_, "reliable.unreachable", session,
               partition == kErrorPartition ? -1
                                            : static_cast<int64_t>(partition),
               -1, static_cast<int64_t>(seq), status.ToString());
    const bool is_failure_report =
        kind == kRelFinal && partition == kErrorPartition;
    std::string initiator = out.initiator;
    int64_t base_timeout = out.base_timeout_us;
    int max_retransmits = out.max_retransmits;
    CancelSessionSends(session);  // invalidates `out`
    if (!is_failure_report) {
      FailSession(session, status, initiator, base_timeout, max_retransmits);
    }
    // A failure report we cannot deliver dies here: the initiator's own
    // session deadline is the backstop.
    return;
  }
  out.attempts += 1;
  out.timeout_us *= 2;
  CountProto("proto.retransmits");
  TraceProto(network_, id_, "reliable.retransmit", session,
             partition == kErrorPartition ? -1
                                          : static_cast<int64_t>(partition),
             -1, static_cast<int64_t>(seq),
             "to '" + to + "' attempt " + std::to_string(out.attempts));
  (void)network_->Send(out.msg);
  auto timer = network_->ScheduleTimer(
      id_, out.timeout_us, [this, key] { HandleRetransmitTimer(key); });
  out.timer = timer.ok() ? timer.value() : 0;
}

void PeerNode::OnAck(const Message& msg) {
  const auto& ack = std::get<AckMsg>(msg.payload);
  SendKey key{ack.session, ack.kind, ack.partition, msg.from, ack.seq};
  auto it = outstanding_sends_.find(key);
  if (it == outstanding_sends_.end()) return;  // late or duplicate ack
  if (it->second.timer != 0) network_->CancelTimer(it->second.timer);
  outstanding_sends_.erase(it);
}

void PeerNode::SendAck(const std::string& to, SessionId session,
                       uint8_t kind, uint64_t partition, uint64_t seq) {
  AckMsg ack;
  ack.session = session;
  ack.kind = kind;
  ack.partition = partition;
  ack.seq = seq;
  (void)network_->Send(Message{id_, to, ack});
}

void PeerNode::AdmitSequenced(const Message& msg, uint8_t kind,
                              SessionId session, uint64_t partition,
                              uint64_t seq) {
  ChannelKey key{session, kind, partition, msg.from};
  RecvChannel& channel = recv_channels_[key];
  if (seq < channel.next_seq) {
    // Retransmission of something already processed: re-ack (the first
    // ack may have been lost) and drop.
    CountProto("net.duplicates_suppressed");
    SendAck(msg.from, session, kind, partition, seq);
    return;
  }
  if (seq > channel.next_seq) {
    // Out of order.  Park it — but only ack what we can hold; dropping
    // an acked message would lose it for good.
    if (channel.parked.size() >= kMaxReorderPerChannel &&
        !channel.parked.count(seq)) {
      CountProto("proto.reorder_dropped");
      return;  // unacked: the sender will retransmit
    }
    channel.parked.emplace(seq, msg);
    SendAck(msg.from, session, kind, partition, seq);
    return;
  }
  SendAck(msg.from, session, kind, partition, seq);
  channel.next_seq = seq + 1;
  Dispatch(msg);
  // Drain any parked successors now in order.  `channel` stays valid:
  // recv_channels_ is a std::map and Dispatch never erases from it.
  auto parked = channel.parked.find(channel.next_seq);
  while (parked != channel.parked.end()) {
    Message queued = std::move(parked->second);
    channel.parked.erase(parked);
    channel.next_seq += 1;
    Dispatch(queued);
    parked = channel.parked.find(channel.next_seq);
  }
}

void PeerNode::CancelSessionSends(SessionId session) {
  for (auto it = outstanding_sends_.begin();
       it != outstanding_sends_.end();) {
    if (std::get<0>(it->first) == session) {
      if (it->second.timer != 0) network_->CancelTimer(it->second.timer);
      it = outstanding_sends_.erase(it);
    } else {
      ++it;
    }
  }
}

void PeerNode::OnPing(const Message& msg) {
  const auto& ping = std::get<PingMsg>(msg.payload);
  if (!seen_pings_.insert(ping.ping_id).second) return;  // already seen
  PongMsg pong;
  pong.ping_id = ping.ping_id;
  pong.responder = id_;
  pong.hops = ping.hops + 1;
  (void)network_->Send(Message{id_, ping.origin, pong});
  if (ping.ttl <= 1) return;
  PingMsg forward = ping;
  forward.ttl -= 1;
  forward.hops += 1;
  for (const std::string& neighbor : Acquaintances()) {
    if (neighbor != msg.from && neighbor != ping.origin) {
      (void)network_->Send(Message{id_, neighbor, forward});
    }
  }
}

void PeerNode::OnPong(const Message& msg) {
  const auto& pong = std::get<PongMsg>(msg.payload);
  auto it = ponged_.find(pong.responder);
  if (it == ponged_.end() || it->second > pong.hops) {
    ponged_[pong.responder] = pong.hops;
  }
}

// ---------------------------------------------------------------------------
// Value search (Gnutella-style flooding with per-hop query translation)
// ---------------------------------------------------------------------------

namespace {

// Fingerprint of a query's content, to drop duplicate deliveries of the
// SAME translated query while still processing different translations.
size_t QueryFingerprint(const SelectionQuery& query) {
  size_t seed = query.attrs.size();
  for (const std::string& a : query.attrs) HashCombine(&seed, a);
  std::vector<size_t> key_hashes;
  key_hashes.reserve(query.keys.size());
  for (const Tuple& k : query.keys) key_hashes.push_back(TupleHash{}(k));
  std::sort(key_hashes.begin(), key_hashes.end());
  for (size_t h : key_hashes) HashCombine(&seed, h);
  return seed;
}

}  // namespace

Status PeerNode::AddData(Relation relation) {
  for (const Attribute& a : relation.schema().attrs()) {
    if (!attributes_.Contains(a.name())) {
      return Status::InvalidArgument("relation attribute '" + a.name() +
                                     "' is not a '" + id_ + "' attribute");
    }
  }
  data_.push_back(std::move(relation));
  return Status::OK();
}

Result<uint64_t> PeerNode::StartValueSearch(SelectionQuery query, int ttl) {
  if (network_ == nullptr) {
    return Status::FailedPrecondition("peer not attached to a network");
  }
  if (query.attrs.empty() || query.keys.empty()) {
    return Status::InvalidArgument("search needs attributes and keys");
  }
  uint64_t id = ((std::hash<std::string>{}(id_) & 0xffff) << 40) |
                next_local_id_++;
  SearchState& state = searches_[id];
  state.query = query;

  CountProto("search.started");
  SearchMsg search;
  search.search_id = id;
  search.origin = id_;
  search.ttl = ttl;
  search.query = std::move(query);
  HandleSearch(search, /*from=*/id_);
  return id;
}

void PeerNode::OnSearch(const Message& msg) {
  HandleSearch(std::get<SearchMsg>(msg.payload), msg.from);
}

void PeerNode::HandleSearch(const SearchMsg& search, const std::string& from) {
  if (!seen_searches_
           .insert({search.search_id, QueryFingerprint(search.query)})
           .second) {
    return;  // this exact translated query was already handled here
  }
  // 1. Evaluate against local data whose schema has the query attributes.
  for (const Relation& relation : data_) {
    auto hits = EvaluateQuery(search.query, relation);
    if (!hits.ok() || hits.value().empty()) continue;
    SearchHitMsg hit;
    hit.search_id = search.search_id;
    hit.responder = id_;
    hit.schema = hits.value().schema();
    hit.tuples = hits.value().tuples();
    hit.complete = search.complete;
    if (search.origin == id_) {
      Message local{id_, id_, std::move(hit)};
      OnSearchHit(local);
    } else {
      (void)network_->Send(Message{id_, search.origin, std::move(hit)});
    }
  }
  if (search.ttl <= 1) return;
  // 2. Translate toward each acquaintance and forward.
  for (const auto& [neighbor, constraints] : constraints_) {
    if (neighbor == from) continue;
    for (const MappingConstraint& c : constraints) {
      auto translated = TranslateQuery(search.query, c.table());
      if (!translated.ok()) continue;  // table not over these attributes
      SearchMsg forward;
      forward.search_id = search.search_id;
      forward.origin = search.origin;
      forward.ttl = search.ttl - 1;
      forward.complete = search.complete && translated.value().complete;
      forward.query = std::move(translated.value().query);
      if (forward.query.keys.empty()) {
        // Nothing translatable toward this neighbor; still report the
        // incompleteness to the origin so it knows coverage is partial.
        if (!forward.complete && search.origin == id_) {
          searches_[search.search_id].complete = false;
        }
        continue;
      }
      (void)network_->Send(Message{id_, neighbor, std::move(forward)});
    }
  }
}

void PeerNode::OnSearchHit(const Message& msg) {
  const auto& hit = std::get<SearchHitMsg>(msg.payload);
  auto it = searches_.find(hit.search_id);
  if (it == searches_.end()) return;
  SearchState& state = it->second;
  state.complete = state.complete && hit.complete;
  CountProto("search.hits");
  CountProto("search.hit_tuples", hit.tuples.size());
  if (state.first_hit_us < 0) state.first_hit_us = network_->now_us();
  auto [rel_it, inserted] =
      state.hits.emplace(hit.responder, Relation(hit.schema));
  (void)inserted;
  for (const Tuple& t : hit.tuples) rel_it->second.AddUnchecked(t);
}

Result<const PeerNode::SearchState*> PeerNode::Search(
    uint64_t search_id) const {
  auto it = searches_.find(search_id);
  if (it == searches_.end()) {
    return Status::NotFound("no search " + std::to_string(search_id) +
                            " started at this peer");
  }
  return &it->second;
}

// ---------------------------------------------------------------------------
// Information-gathering phase
// ---------------------------------------------------------------------------

namespace {

// This peer's own hop partitions as wire summaries.
std::vector<PartitionSummary> OwnPartitionSummaries(
    const std::vector<MappingConstraint>& own, size_t hop) {
  std::vector<PartitionSummary> out;
  for (const Partition& p : ComputePartitions(own)) {
    PartitionSummary s;
    s.first_hop = hop;
    s.last_hop = hop;
    s.attr_names = p.attributes.Names();
    for (size_t idx : p.constraint_indices) {
      PartitionMemberRef ref;
      ref.hop = hop;
      ref.table_name = own[idx].name();
      ref.attr_names = own[idx].Attributes().Names();
      s.members.push_back(std::move(ref));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::vector<PartitionSummary> PeerNode::MergeSummaries(
    const std::vector<PartitionSummary>& upstream, size_t hop,
    const std::vector<MappingConstraint>& own) {
  std::vector<PartitionSummary> items = upstream;
  std::vector<PartitionSummary> mine = OwnPartitionSummaries(own, hop);
  items.insert(items.end(), mine.begin(), mine.end());

  std::vector<AttributeSet> sets;
  sets.reserve(items.size());
  for (const PartitionSummary& s : items) {
    sets.push_back(AttributeSetFromNames(s.attr_names));
  }
  std::vector<PartitionSummary> merged;
  for (const std::vector<size_t>& group : GroupByAttributeOverlap(sets)) {
    PartitionSummary s;
    AttributeSet attrs;
    s.first_hop = items[group.front()].first_hop;
    s.last_hop = items[group.front()].last_hop;
    for (size_t i : group) {
      const PartitionSummary& part = items[i];
      s.members.insert(s.members.end(), part.members.begin(),
                       part.members.end());
      attrs = attrs.Union(sets[i]);
      s.first_hop = std::min(s.first_hop, part.first_hop);
      s.last_hop = std::max(s.last_hop, part.last_hop);
    }
    std::sort(s.members.begin(), s.members.end(),
              [](const PartitionMemberRef& a, const PartitionMemberRef& b) {
                return a.hop != b.hop ? a.hop < b.hop
                                      : a.table_name < b.table_name;
              });
    s.attr_names = attrs.Names();
    merged.push_back(std::move(s));
  }
  return merged;
}

std::vector<Mapping> PeerNode::ReducedRows(
    const MappingTable& table,
    const std::map<std::string, ValueFilter>& filters) {
  std::vector<Mapping> out;
  out.reserve(table.rows().size());
  for (const Mapping& row : table.rows()) {
    bool keep = true;
    for (size_t i = 0; i < table.x_arity() && keep; ++i) {
      if (!row.cell(i).is_constant()) continue;
      auto it = filters.find(table.x_schema().attr(i).name());
      if (it != filters.end() && !it->second.MayContain(row.cell(i).value())) {
        keep = false;
      }
    }
    if (keep) out.push_back(row);
  }
  // Semi-join effectiveness: rows_kept / rows_in is the filter's
  // reduction ratio (paper §7's traffic discussion).
  if (!filters.empty()) {
    CountProto("semijoin.rows_in", table.rows().size());
    CountProto("semijoin.rows_kept", out.size());
  }
  return out;
}

std::map<std::string, ValueFilter> PeerNode::ComputeForwardFilters(
    const std::vector<MappingConstraint>& own,
    const std::map<std::string, ValueFilter>& incoming) const {
  // Collect producible Y values per attribute over the REDUCED tables, so
  // reductions compose hop over hop.
  std::map<std::string, std::vector<Value>> values;
  std::map<std::string, bool> pass_all;
  for (const MappingConstraint& c : own) {
    const MappingTable& table = c.table();
    for (const Mapping& row : ReducedRows(table, incoming)) {
      for (size_t i = table.x_arity(); i < row.arity(); ++i) {
        const std::string& attr = table.schema().attr(i).name();
        if (row.cell(i).is_variable()) {
          pass_all[attr] = true;
        } else {
          values[attr].push_back(row.cell(i).value());
        }
      }
    }
  }
  std::map<std::string, ValueFilter> out;
  for (const auto& [attr, all] : pass_all) {
    (void)all;
    out[attr].pass_all = true;
  }
  for (const auto& [attr, vals] : values) {
    if (out.count(attr)) continue;  // already pass-all
    ValueFilter filter;
    filter.bloom = BloomFilter(vals.size());
    for (const Value& v : vals) filter.bloom.Add(v);
    out[attr] = std::move(filter);
  }
  return out;
}

void PeerNode::OnSessionInit(const Message& msg) {
  const auto& init = std::get<SessionInitMsg>(msg.payload);
  const SessionSpec& spec = init.spec;
  auto self = std::find(spec.path_peers.begin(), spec.path_peers.end(), id_);
  if (self == spec.path_peers.end()) return;  // not for us
  size_t k = static_cast<size_t>(self - spec.path_peers.begin());
  size_t n = spec.path_peers.size();
  if (k + 1 >= n) return;  // the last peer never receives init

  if (spec.semijoin_filters) {
    incoming_filters_[spec.id] = init.forward_filters;
  }
  const std::vector<MappingConstraint>& own =
      ConstraintsTo(spec.path_peers[k + 1]);
  std::vector<PartitionSummary> merged =
      MergeSummaries(init.partitions, k, own);
  CountProto("cover.gather_hops");
  TraceProto(network_, id_, "gather.forward", spec.id, -1,
             static_cast<int>(k), static_cast<int64_t>(merged.size()));
  if (k == n - 2) {
    DistributePlan(spec, std::move(merged));
  } else {
    SessionInitMsg forward;
    forward.spec = spec;
    forward.partitions = std::move(merged);
    if (spec.semijoin_filters) {
      forward.forward_filters =
          ComputeForwardFilters(own, incoming_filters_[spec.id]);
    }
    (void)SendReliable(spec.id, kRelInit, 0,
                       Message{id_, spec.path_peers[k + 1], forward},
                       spec.retransmit_timeout_us, spec.max_retransmits,
                       "information gathering", spec.path_peers[0]);
  }
}

void PeerNode::DistributePlan(const SessionSpec& spec,
                              std::vector<PartitionSummary> partitions) {
  TraceProto(network_, id_, "plan.distributed", spec.id, -1, -1,
             static_cast<int64_t>(partitions.size()));
  ComputePlanMsg plan;
  plan.spec = spec;
  plan.partitions = std::move(partitions);
  for (size_t i = 0; i + 1 < spec.path_peers.size(); ++i) {
    if (spec.path_peers[i] == id_) continue;  // handled locally below
    (void)SendReliable(spec.id, kRelPlan, 0,
                       Message{id_, spec.path_peers[i], plan},
                       spec.retransmit_timeout_us, spec.max_retransmits,
                       "plan distribution", spec.path_peers[0]);
  }
  // Handle our own copy synchronously.
  Message local{id_, id_, plan};
  OnComputePlan(local);
}

// ---------------------------------------------------------------------------
// Computation phase
// ---------------------------------------------------------------------------

void PeerNode::OnComputePlan(const Message& msg) {
  const auto& plan = std::get<ComputePlanMsg>(msg.payload);
  const SessionSpec& spec = plan.spec;
  auto self = std::find(spec.path_peers.begin(), spec.path_peers.end(), id_);
  if (self == spec.path_peers.end()) return;
  size_t my_hop = static_cast<size_t>(self - spec.path_peers.begin());

  // Initiator bookkeeping (peer 0 holds the session result).
  if (my_hop == 0) {
    auto init_it = initiator_sessions_.find(spec.id);
    if (init_it != initiator_sessions_.end()) {
      InitiatorState& session = init_it->second;
      if (!session.plan_received) {
        session.plan_received = true;
        session.plan_partitions = plan.partitions;
        size_t k = plan.partitions.size();
        session.result.partition_covers.resize(k);
        session.result.partition_keep_names.resize(k);
        session.result.partition_satisfiable.assign(k, true);
        session.partition_done.assign(k, false);
        for (size_t i = 0; i < k; ++i) {
          session.result.partition_keep_names[i] =
              KeepNamesFor(plan.partitions[i], spec);
        }
        if (k == 0) {
          FinishSession(&session);
        } else {
          std::vector<FinalRowsMsg> stashed = std::move(session.pending_final);
          session.pending_final.clear();
          for (const FinalRowsMsg& f : stashed) IntegrateFinalRows(f);
        }
      }
    }
  }

  ParticipantState& state = participant_sessions_[spec.id];
  state.spec = spec;
  state.partitions = plan.partitions;
  state.my_hop = my_hop;
  TraceProto(network_, id_, "plan.received", spec.id, -1,
             static_cast<int>(my_hop),
             static_cast<int64_t>(plan.partitions.size()));

  const std::vector<MappingConstraint>* own = nullptr;
  if (my_hop + 1 < spec.path_peers.size()) {
    own = &ConstraintsTo(spec.path_peers[my_hop + 1]);
  }

  for (size_t p = 0; p < plan.partitions.size(); ++p) {
    const PartitionSummary& partition = plan.partitions[p];
    PartState& ps = state.parts[p];
    ps.keep_names = KeepNamesFor(partition, spec);
    ps.needed_names = NeededNamesFor(partition, spec, my_hop);
    ps.cache = std::make_unique<MappingCache>(spec.cache_capacity);

    // Am I a member owner in this partition?
    std::vector<const MappingConstraint*> members;
    if (own != nullptr) {
      for (const PartitionMemberRef& ref : partition.members) {
        if (ref.hop != my_hop) continue;
        for (const MappingConstraint& c : *own) {
          if (c.name() == ref.table_name) {
            members.push_back(&c);
            break;
          }
        }
      }
    }
    ps.involved = !members.empty();
    if (!ps.involved) continue;
    ps.is_starter = (partition.last_hop == my_hop);
    ps.is_terminal = (partition.first_hop == my_hop);

    // Join my member tables (overlap order with Cartesian fallback),
    // after applying any semi-join prefilters from upstream.
    static const std::map<std::string, ValueFilter> kNoFilters;
    const std::map<std::string, ValueFilter>* filters = &kNoFilters;
    if (spec.semijoin_filters) {
      auto fit = incoming_filters_.find(spec.id);
      if (fit != incoming_filters_.end()) filters = &fit->second;
    }
    auto reduced_table = [&](const MappingTable& t) {
      FreeTable f(t.schema());
      for (Mapping& row : ReducedRows(t, *filters)) f.AddRow(std::move(row));
      return f;
    };
    FreeTable local = reduced_table(members[0]->table());
    ComposeOptions compose;
    compose.materialize_limit = spec.materialize_limit;
    compose.max_result_rows = spec.max_result_rows;
    for (size_t i = 1; i < members.size(); ++i) {
      auto joined =
          JoinOrProduct(local, reduced_table(members[i]->table()), compose);
      if (!joined.ok()) {
        FailSession(spec.id, joined.status());
        return;
      }
      local = std::move(joined).value();
    }
    ps.local = std::move(local);
    TraceProto(network_, id_, "partition.local_join", spec.id,
               static_cast<int64_t>(p), static_cast<int>(my_hop),
               static_cast<int64_t>(ps.local.rows().size()));
  }

  // Starters begin streaming immediately.
  StartPartitions(&state);

  // Batches that raced ahead of the plan, replayed in arrival order.
  std::vector<Message> stashed;
  for (auto it = parked_unknown_session_.begin();
       it != parked_unknown_session_.end();) {
    const auto* batch = std::get_if<CoverBatchMsg>(&it->payload);
    if (batch != nullptr && batch->session == spec.id) {
      stashed.push_back(std::move(*it));
      it = parked_unknown_session_.erase(it);
    } else {
      ++it;
    }
  }
  for (const Message& m : stashed) OnCoverBatch(m);
}

void PeerNode::StartPartitions(ParticipantState* state) {
  for (auto& [p, ps] : state->parts) {
    if (ps.involved && ps.is_starter && !ps.done) {
      Status s = ProcessRows(state, p, /*incoming=*/nullptr, /*eos=*/true);
      if (!s.ok()) {
        FailSession(state->spec.id, s);
        return;
      }
    }
  }
}

Status PeerNode::ProcessRows(ParticipantState* state, size_t part_idx,
                             const FreeTable* incoming, bool eos) {
  PartState& ps = state->parts.at(part_idx);
  if (ps.done) return Status::OK();

  ComposeOptions compose;
  compose.materialize_limit = state->spec.materialize_limit;
  compose.max_result_rows = state->spec.max_result_rows;
  FreeTable joined;
  bool have_rows = false;
  if (incoming == nullptr) {
    joined = ps.local;
    have_rows = true;
  } else if (!incoming->empty()) {
    HYP_ASSIGN_OR_RETURN(joined,
                         JoinOrProduct(ps.local, *incoming, compose));
    have_rows = true;
  }

  std::vector<Mapping> fresh;
  if (have_rows && !joined.empty()) {
    // Project onto what is still needed (endpoint attrs + earlier hops).
    std::vector<std::string> project_to;
    for (const std::string& n : ps.needed_names) {
      if (joined.schema().IndexOf(n)) project_to.push_back(n);
    }
    if (project_to.empty()) {
      // Terminal of a middle-only partition: only satisfiability matters.
      ps.any_rows = ps.any_rows || !joined.empty();
    } else {
      HYP_ASSIGN_OR_RETURN(FreeTable projected,
                           joined.ProjectOnto(project_to, compose));
      if (!ps.emitted) ps.emitted.emplace(projected.schema());
      for (const Mapping& row : projected.rows()) {
        if (ps.emitted->AddRow(row)) fresh.push_back(row);
      }
      ps.any_rows = ps.any_rows || !ps.emitted->empty();
    }
  }
  return EmitRows(state, part_idx, std::move(fresh), eos);
}

Status PeerNode::EmitRows(ParticipantState* state, size_t part_idx,
                          std::vector<Mapping> rows, bool eos) {
  PartState& ps = state->parts.at(part_idx);
  for (Mapping& row : rows) {
    if (ps.cache->Add(std::move(row))) {
      HYP_RETURN_IF_ERROR(
          SendBatch(state, part_idx, ps.cache->Drain(), /*eos=*/false));
    }
  }
  if (eos) {
    HYP_RETURN_IF_ERROR(
        SendBatch(state, part_idx, ps.cache->Drain(), /*eos=*/true));
    ps.done = true;
  }
  return Status::OK();
}

Status PeerNode::SendBatch(ParticipantState* state, size_t part_idx,
                           std::vector<Mapping> rows, bool eos) {
  if (rows.empty() && !eos) return Status::OK();
  PartState& ps = state->parts.at(part_idx);
  Schema schema;
  if (ps.emitted) schema = ps.emitted->schema();

  CountProto("cover.batches_sent");
  CountProto("cover.rows_streamed", rows.size());
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry::Default()
        .GetHistogram("cover.batch_rows", obs::SizeBounds())
        ->Observe(static_cast<int64_t>(rows.size()));
  }
  TraceProto(network_, id_,
             ps.is_terminal ? "cover.final_sent" : "cover.batch_sent",
             state->spec.id, static_cast<int64_t>(part_idx),
             static_cast<int>(state->my_hop),
             static_cast<int64_t>(rows.size()), eos ? "eos" : "");

  if (ps.is_terminal) {
    FinalRowsMsg final_rows;
    final_rows.session = state->spec.id;
    final_rows.partition = part_idx;
    final_rows.schema = schema;
    final_rows.rows = std::move(rows);
    final_rows.eos = eos;
    final_rows.satisfiable = ps.any_rows;
    const std::string& initiator = state->spec.path_peers[0];
    if (initiator == id_) {
      IntegrateFinalRows(final_rows);
      return Status::OK();
    }
    return SendReliable(state->spec.id, kRelFinal, part_idx,
                        Message{id_, initiator, std::move(final_rows)},
                        state->spec.retransmit_timeout_us,
                        state->spec.max_retransmits, "final-row delivery",
                        initiator);
  }
  CoverBatchMsg batch;
  batch.session = state->spec.id;
  batch.partition = part_idx;
  batch.schema = schema;
  batch.rows = std::move(rows);
  batch.eos = eos;
  const std::string& upstream = state->spec.path_peers[state->my_hop - 1];
  return SendReliable(state->spec.id, kRelBatch, part_idx,
                      Message{id_, upstream, std::move(batch)},
                      state->spec.retransmit_timeout_us,
                      state->spec.max_retransmits, "cover streaming",
                      state->spec.path_peers[0]);
}

void PeerNode::OnCoverBatch(const Message& msg) {
  const auto& batch = std::get<CoverBatchMsg>(msg.payload);
  auto it = participant_sessions_.find(batch.session);
  if (it == participant_sessions_.end()) {
    ParkUnknownSession(msg);  // raced ahead of plan
    return;
  }
  ParticipantState& state = it->second;
  if (state.failed) return;  // already reported; ignore the stragglers
  auto ps_it = state.parts.find(batch.partition);
  if (ps_it == state.parts.end() || !ps_it->second.involved) {
    FailSession(state.spec.id,
                Status::Internal("batch for a partition this peer ("
                                 + id_ + ") does not own"));
    return;
  }
  FreeTable incoming(batch.schema);
  for (const Mapping& row : batch.rows) incoming.AddRow(row);
  Status s = ProcessRows(&state, batch.partition, &incoming, batch.eos);
  if (!s.ok()) FailSession(state.spec.id, s);
}

// ---------------------------------------------------------------------------
// Initiator side
// ---------------------------------------------------------------------------

Result<SessionId> PeerNode::StartCoverSession(
    std::vector<std::string> path_peers, std::vector<Attribute> x_attrs,
    std::vector<Attribute> y_attrs, const SessionOptions& opts) {
  if (network_ == nullptr) {
    return Status::FailedPrecondition("peer not attached to a network");
  }
  if (path_peers.size() < 2) {
    return Status::InvalidArgument("a path needs at least two peers");
  }
  if (path_peers.front() != id_) {
    return Status::InvalidArgument("sessions start at the first path peer");
  }
  if (x_attrs.empty() || y_attrs.empty()) {
    return Status::InvalidArgument("X and Y endpoints must be nonempty");
  }
  for (const Attribute& a : x_attrs) {
    if (!attributes_.Contains(a.name())) {
      return Status::InvalidArgument("X attribute '" + a.name() +
                                     "' not at this peer");
    }
  }

  SessionSpec spec;
  spec.id = ((std::hash<std::string>{}(id_) & 0xffff) << 32) |
            next_local_id_++;
  spec.path_peers = std::move(path_peers);
  for (const Attribute& a : x_attrs) spec.x_names.push_back(a.name());
  for (const Attribute& a : y_attrs) spec.y_names.push_back(a.name());
  spec.cache_capacity = opts.cache_capacity;
  spec.materialize_limit = opts.compose.materialize_limit;
  spec.max_result_rows = opts.compose.max_result_rows;
  spec.semijoin_filters = opts.semijoin_filters;
  spec.retransmit_timeout_us = opts.retransmit_timeout_us;
  spec.max_retransmits = opts.max_retransmits;

  InitiatorState& session = initiator_sessions_[spec.id];
  session.spec = spec;
  session.x_attrs = std::move(x_attrs);
  session.y_attrs = std::move(y_attrs);
  session.opts = opts;
  session.result.stats.start_us = network_->now_us();
  CountProto("cover.sessions_started");
  TraceProto(network_, id_, "session.start", spec.id, -1, 0,
             static_cast<int64_t>(spec.path_peers.size()));

  // Backstop: whatever goes wrong out there, the session terminates with
  // a diagnosable error no later than this.
  if (opts.session_deadline_us > 0) {
    auto deadline = network_->ScheduleTimer(
        id_, opts.session_deadline_us,
        [this, sid = spec.id] { OnSessionDeadline(sid); });
    if (deadline.ok()) session.deadline_timer = deadline.value();
  }

  std::vector<PartitionSummary> own =
      OwnPartitionSummaries(ConstraintsTo(spec.path_peers[1]), /*hop=*/0);
  if (spec.path_peers.size() == 2) {
    DistributePlan(spec, std::move(own));
  } else {
    SessionInitMsg init;
    init.spec = spec;
    init.partitions = std::move(own);
    if (spec.semijoin_filters) {
      init.forward_filters = ComputeForwardFilters(
          ConstraintsTo(spec.path_peers[1]), {});
    }
    HYP_RETURN_IF_ERROR(SendReliable(
        spec.id, kRelInit, 0, Message{id_, spec.path_peers[1], init},
        spec.retransmit_timeout_us, spec.max_retransmits,
        "information gathering", id_));
  }
  return spec.id;
}

void PeerNode::OnFinalRows(const Message& msg) {
  IntegrateFinalRows(std::get<FinalRowsMsg>(msg.payload));
}

void PeerNode::IntegrateFinalRows(const FinalRowsMsg& final_rows) {
  auto it = initiator_sessions_.find(final_rows.session);
  if (it == initiator_sessions_.end()) return;
  InitiatorState& session = it->second;
  if (session.result.done) return;

  if (!final_rows.error.empty()) {
    // Reconstruct the remote peer's status so the initiator sees the
    // true failure class (Unavailable, DeadlineExceeded, ...), not a
    // generic Internal wrapper.
    StatusCode code = final_rows.error_code == 0
                          ? StatusCode::kInternal
                          : static_cast<StatusCode>(final_rows.error_code);
    MarkInitiatorFailed(&session, Status(code, final_rows.error));
    return;
  }
  if (!session.plan_received) {
    // Raced ahead of the plan message; replayed in OnComputePlan.
    session.pending_final.push_back(final_rows);
    return;
  }
  size_t p = final_rows.partition;
  if (p >= session.result.partition_covers.size()) return;
  SessionStats& stats = session.result.stats;
  int64_t now = network_->now_us();

  if (!final_rows.rows.empty()) {
    if (stats.first_row_us < 0) {
      stats.first_row_us = now;
      TraceProto(network_, id_, "session.first_row", final_rows.session,
                 static_cast<int64_t>(p), 0,
                 static_cast<int64_t>(final_rows.rows.size()));
    }
    if (!stats.partition_first_row_us.count(p)) {
      stats.partition_first_row_us[p] = now;
    }
    CountProto("cover.final_rows_received", final_rows.rows.size());
    stats.rows_received += final_rows.rows.size();
    FreeTable& cover = session.result.partition_covers[p];
    if (cover.schema().arity() == 0) {
      cover = FreeTable(final_rows.schema);
    }
    for (const Mapping& row : final_rows.rows) cover.AddRow(row);
  }
  if (final_rows.eos) {
    session.partition_done[p] = true;
    stats.partition_complete_us[p] = now;
    session.result.partition_satisfiable[p] = final_rows.satisfiable;
    TraceProto(network_, id_, "partition.complete", final_rows.session,
               static_cast<int64_t>(p), 0,
               static_cast<int64_t>(
                   session.result.partition_covers[p].size()));
    bool all_done = true;
    for (bool done : session.partition_done) all_done = all_done && done;
    if (all_done) FinishSession(&session);
  }
}

void PeerNode::FinishSession(InitiatorState* session) {
  if (session->deadline_timer != 0) {
    network_->CancelTimer(session->deadline_timer);
    session->deadline_timer = 0;
  }
  SessionResult& result = session->result;
  if (session->opts.combine_partitions) {
    std::vector<PartitionCover> covers;
    for (size_t p = 0; p < result.partition_covers.size(); ++p) {
      PartitionCover pc;
      pc.keep_names = result.partition_keep_names[p];
      pc.cover = result.partition_covers[p];
      pc.satisfiable = result.partition_satisfiable[p];
      covers.push_back(std::move(pc));
    }
    CoverEngineOptions engine_opts;
    engine_opts.compose = session->opts.compose;
    auto combined = CoverEngine::CombinePartitionCovers(
        covers, session->x_attrs, session->y_attrs, engine_opts);
    if (!combined.ok()) {
      result.error = combined.status();
    } else {
      result.cover = std::move(combined).value();
    }
  }
  result.stats.complete_us = network_->now_us();
  if (result.stats.first_row_us < 0) {
    result.stats.first_row_us = result.stats.complete_us;
  }
  result.done = true;
  CountProto("cover.sessions_completed");
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry::Default()
        .GetHistogram("cover.session_duration_us", obs::LatencyBoundsUs())
        ->Observe(result.stats.complete_us - result.stats.start_us);
  }
  TraceProto(network_, id_, "session.complete", session->spec.id, -1, 0,
             static_cast<int64_t>(result.stats.rows_received));
}

void PeerNode::MarkInitiatorFailed(InitiatorState* session, Status status) {
  if (session->result.done) return;
  session->result.done = true;
  session->result.error = std::move(status);
  session->result.stats.complete_us = network_->now_us();
  if (session->deadline_timer != 0) {
    network_->CancelTimer(session->deadline_timer);
    session->deadline_timer = 0;
  }
  CancelSessionSends(session->spec.id);
  auto part_it = participant_sessions_.find(session->spec.id);
  if (part_it != participant_sessions_.end()) part_it->second.failed = true;
}

void PeerNode::OnSessionDeadline(SessionId session_id) {
  auto it = initiator_sessions_.find(session_id);
  if (it == initiator_sessions_.end()) return;
  InitiatorState& session = it->second;
  session.deadline_timer = 0;  // it just fired
  if (session.result.done) return;
  CountProto("proto.session_timeouts");
  std::string detail;
  if (!session.plan_received) {
    detail = "no compute plan received (information-gathering phase)";
  } else {
    detail = "computation phase; awaiting final rows from";
    std::vector<std::string> waiting;
    for (size_t p = 0; p < session.partition_done.size(); ++p) {
      if (session.partition_done[p]) continue;
      size_t hop = session.plan_partitions[p].first_hop;
      if (hop < session.spec.path_peers.size()) {
        AppendUnique(&waiting, session.spec.path_peers[hop]);
      }
    }
    for (const std::string& w : waiting) detail += " '" + w + "'";
  }
  TraceProto(network_, id_, "session.timeout", session_id, -1, 0, 0, detail);
  MarkInitiatorFailed(
      &session, Status::DeadlineExceeded(
                    "session " + std::to_string(session_id) +
                    " exceeded its deadline: " + detail));
}

void PeerNode::ParkUnknownSession(const Message& msg) {
  parked_unknown_session_.push_back(msg);
  if (parked_unknown_session_.size() > kMaxParkedMessages) {
    parked_unknown_session_.pop_front();
    CountProto("proto.parked_evicted");
  }
}

void PeerNode::FailSession(SessionId id, const Status& status,
                           const std::string& initiator_hint,
                           int64_t timeout_us, int max_retransmits) {
  CountProto("cover.sessions_failed");
  TraceProto(network_, id_, "session.failed", id, -1, -1, 0,
             status.ToString());
  CancelSessionSends(id);

  // Who do we tell?  Participant state knows the spec; otherwise the
  // caller's hint (taken from the undeliverable message) is all we have.
  std::string initiator = initiator_hint;
  auto part_it = participant_sessions_.find(id);
  if (part_it != participant_sessions_.end()) {
    part_it->second.failed = true;
    initiator = part_it->second.spec.path_peers[0];
    timeout_us = part_it->second.spec.retransmit_timeout_us;
    max_retransmits = part_it->second.spec.max_retransmits;
  }
  if (initiator_sessions_.count(id)) initiator = id_;
  if (initiator.empty()) return;  // nothing known about this session

  FinalRowsMsg final_rows;
  final_rows.session = id;
  final_rows.partition = kErrorPartition;
  final_rows.error = status.message();
  final_rows.error_code = static_cast<int32_t>(status.code());
  final_rows.eos = true;
  if (initiator == id_) {
    IntegrateFinalRows(final_rows);
    return;
  }
  if (timeout_us <= 0) timeout_us = SessionSpec{}.retransmit_timeout_us;
  if (max_retransmits < 0) max_retransmits = SessionSpec{}.max_retransmits;
  (void)SendReliable(id, kRelFinal, kErrorPartition,
                     Message{id_, initiator, std::move(final_rows)},
                     timeout_us, max_retransmits, "failure notification",
                     initiator);
}

Result<const SessionResult*> PeerNode::GetResult(SessionId session) const {
  auto it = initiator_sessions_.find(session);
  if (it == initiator_sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(session) +
                            " started at this peer");
  }
  return &it->second.result;
}

}  // namespace hyperion
