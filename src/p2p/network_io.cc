// Manifest grammar (one block per peer, blocks separated by blank lines):
//
//   peer GDB
//   attrs GDB_id:string, GDB_entry:string
//   data GDB__data0.csv
//   constraint MIM GDB__m1.hmt
//   constraint SwissProt GDB__m2.hmt

#include "p2p/network_io.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "storage/csv.h"

namespace hyperion {

namespace fs = std::filesystem;

namespace {

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read '" + path.string() + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write '" + path.string() + "'");
  out << content;
  return out.good() ? Status::OK()
                    : Status::IoError("write failed: " + path.string());
}

std::string AttrSpec(const AttributeSet& attrs) {
  std::vector<std::string> parts;
  for (const Attribute& a : attrs.attrs()) {
    parts.push_back(a.name() + ":" +
                    ValueTypeToString(a.domain()->value_type()));
  }
  return JoinStrings(parts, ", ");
}

Result<AttributeSet> ParseAttrSpec(std::string_view spec) {
  std::vector<Attribute> attrs;
  for (const std::string& piece : SplitString(spec, ',')) {
    std::string_view p = TrimWhitespace(piece);
    size_t colon = p.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("attr spec needs name:type: '" +
                                     std::string(p) + "'");
    }
    std::string name(TrimWhitespace(p.substr(0, colon)));
    std::string_view type = TrimWhitespace(p.substr(colon + 1));
    if (type == "string") {
      attrs.emplace_back(name, Domain::AllStrings());
    } else if (type == "int") {
      attrs.emplace_back(name, Domain::AllInts());
    } else {
      return Status::InvalidArgument("unknown attribute type '" +
                                     std::string(type) + "'");
    }
  }
  return AttributeSet(std::move(attrs));
}

// Conservative file-name token from a peer/table name.
std::string Slug(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

Status SaveNetwork(const std::vector<const PeerNode*>& peers,
                   const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create '" + directory +
                           "': " + ec.message());
  }
  std::ostringstream manifest;
  manifest << "# hyperion network v1\n";
  for (const PeerNode* peer : peers) {
    manifest << "peer " << peer->id() << "\n";
    manifest << "attrs " << AttrSpec(peer->attributes()) << "\n";
    for (size_t i = 0; i < peer->data().size(); ++i) {
      std::string file =
          Slug(peer->id()) + "__data" + std::to_string(i) + ".csv";
      HYP_RETURN_IF_ERROR(WriteFile(fs::path(directory) / file,
                                    ExportRelationCsv(peer->data()[i])));
      manifest << "data " << file << "\n";
    }
    for (const std::string& neighbor : peer->Acquaintances()) {
      for (const MappingConstraint& c : peer->ConstraintsTo(neighbor)) {
        std::string file =
            Slug(peer->id()) + "__" + Slug(c.name()) + ".hmt";
        HYP_RETURN_IF_ERROR(
            WriteFile(fs::path(directory) / file, c.table().Serialize()));
        manifest << "constraint " << neighbor << " " << file << "\n";
      }
    }
    manifest << "\n";
  }
  return WriteFile(fs::path(directory) / "network.manifest",
                   manifest.str());
}

Result<std::vector<std::unique_ptr<PeerNode>>> LoadNetwork(
    const std::string& directory) {
  HYP_ASSIGN_OR_RETURN(std::string manifest,
                       ReadFile(fs::path(directory) / "network.manifest"));
  std::vector<std::unique_ptr<PeerNode>> peers;
  // Parse pass 1: create the peers; remember pending wiring.
  struct PendingConstraint {
    size_t peer_index;
    std::string neighbor;
    std::string file;
  };
  struct PendingData {
    size_t peer_index;
    std::string file;
  };
  std::vector<PendingConstraint> constraints;
  std::vector<PendingData> data_files;
  std::optional<std::string> current_id;
  std::optional<AttributeSet> current_attrs;

  auto flush_peer = [&]() -> Status {
    if (!current_id) return Status::OK();
    if (!current_attrs) {
      return Status::InvalidArgument("peer '" + *current_id +
                                     "' has no attrs line");
    }
    peers.push_back(
        std::make_unique<PeerNode>(*current_id, *current_attrs));
    current_id.reset();
    current_attrs.reset();
    return Status::OK();
  };

  for (const std::string& raw_line : SplitString(manifest, '\n')) {
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "peer ")) {
      HYP_RETURN_IF_ERROR(flush_peer());
      current_id = std::string(TrimWhitespace(line.substr(5)));
      continue;
    }
    if (!current_id && !peers.empty()) {
      // Lines after a flushed peer belong to the previous one only if we
      // have not started a new block; manifest blocks always start with
      // "peer", so this is a format error.
      return Status::InvalidArgument("manifest line outside a peer block: " +
                                     std::string(line));
    }
    if (StartsWith(line, "attrs ")) {
      HYP_ASSIGN_OR_RETURN(AttributeSet attrs,
                           ParseAttrSpec(line.substr(6)));
      current_attrs = std::move(attrs);
    } else if (StartsWith(line, "data ")) {
      // The peer is created on flush; defer the file read.
      if (!current_id) {
        return Status::InvalidArgument("data line outside a peer block");
      }
      data_files.push_back(
          {peers.size(), std::string(TrimWhitespace(line.substr(5)))});
    } else if (StartsWith(line, "constraint ")) {
      if (!current_id) {
        return Status::InvalidArgument(
            "constraint line outside a peer block");
      }
      std::string rest(TrimWhitespace(line.substr(11)));
      size_t space = rest.find(' ');
      if (space == std::string::npos) {
        return Status::InvalidArgument(
            "constraint line needs '<neighbor> <file>': " + rest);
      }
      constraints.push_back(
          {peers.size(), rest.substr(0, space),
           std::string(TrimWhitespace(rest.substr(space + 1)))});
    } else {
      return Status::InvalidArgument("unrecognized manifest line: " +
                                     std::string(line));
    }
  }
  HYP_RETURN_IF_ERROR(flush_peer());

  for (const PendingData& d : data_files) {
    if (d.peer_index >= peers.size()) {
      return Status::Internal("manifest data indexing error");
    }
    HYP_ASSIGN_OR_RETURN(std::string csv,
                         ReadFile(fs::path(directory) / d.file));
    HYP_ASSIGN_OR_RETURN(Relation relation, ImportRelationCsv(csv));
    HYP_RETURN_IF_ERROR(peers[d.peer_index]->AddData(std::move(relation)));
  }
  for (const PendingConstraint& c : constraints) {
    if (c.peer_index >= peers.size()) {
      return Status::Internal("manifest constraint indexing error");
    }
    HYP_ASSIGN_OR_RETURN(std::string text,
                         ReadFile(fs::path(directory) / c.file));
    HYP_ASSIGN_OR_RETURN(MappingTable table, MappingTable::Parse(text));
    HYP_RETURN_IF_ERROR(peers[c.peer_index]->AddConstraintTo(
        c.neighbor, MappingConstraint(std::move(table))));
  }
  return peers;
}

}  // namespace hyperion
