// PeerNode: one autonomous peer — its attributes, its mapping tables to
// acquainted peers, and its side of the distributed cover protocol.
//
// Mirrors the paper's implementation sketch (§6.1/§7): each peer has a
// storage module (constraint store + mapping cache) and a networking
// module (message handling over the Gnutella-like substrate).  A peer
// only ever stores constraints between itself and its immediate
// acquaintances; covers across longer paths emerge from the protocol.

#ifndef HYPERION_P2P_PEER_H_
#define HYPERION_P2P_PEER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "core/constraint.h"
#include "core/cover_engine.h"
#include "core/schema.h"
#include "p2p/message.h"
#include "p2p/network_interface.h"
#include "p2p/protocol.h"
#include "storage/mapping_cache.h"

namespace hyperion {

/// \brief A peer in the network.  Not thread-safe; driven by SimNetwork's
/// single-threaded event loop.
class PeerNode {
 public:
  PeerNode(std::string id, AttributeSet attributes);

  const std::string& id() const { return id_; }
  const AttributeSet& attributes() const { return attributes_; }

  /// \brief Registers this peer's handler with `network` (either the
  /// discrete-event SimNetwork or the real-thread ThreadedNetwork).  The
  /// network must outlive the peer's use.
  Status Attach(Network* network);

  /// \brief Stores a mapping table from this peer to `neighbor` as a
  /// constraint (X must be within this peer's attributes).  The table
  /// must be named, uniquely per neighbor.
  Status AddConstraintTo(const std::string& neighbor, MappingConstraint c);

  /// \brief Constraints stored toward `neighbor` (empty when none).
  const std::vector<MappingConstraint>& ConstraintsTo(
      const std::string& neighbor) const;

  /// \brief Acquainted peer ids (those this peer holds tables toward).
  std::vector<std::string> Acquaintances() const;

  /// \brief Peers that answered a discovery ping within `ttl` hops, with
  /// their hop distance.  Must be called before network.Run(); results
  /// are available afterwards via Ponged().
  Status FloodPing(int ttl);
  const std::map<std::string, int>& Ponged() const { return ponged_; }

  /// \brief Stores a local data relation; value searches evaluate against
  /// every stored relation whose schema contains the query attributes.
  Status AddData(Relation relation);
  const std::vector<Relation>& data() const { return data_; }

  /// \brief Result of a value search started at this peer.
  struct SearchState {
    SelectionQuery query;
    /// Hits by responder (merged, deduplicated per responder).
    std::map<std::string, Relation> hits;
    /// Whether every translation along every explored path was exact.
    bool complete = true;
    int64_t first_hit_us = -1;  // virtual time of the first hit
  };

  /// \brief Starts a Gnutella-style value search (§1–§2): the query is
  /// evaluated locally, then flooded to acquaintances with its keys
  /// translated through the stored mapping tables at every hop.  Returns
  /// the search id; run the network, then read Search(id).
  Result<uint64_t> StartValueSearch(SelectionQuery query, int ttl);

  Result<const SearchState*> Search(uint64_t search_id) const;

  /// \brief Starts a cover session along `path_peers` (this peer first).
  /// `x_attrs` must be within this peer's attributes; `y_attrs` are the
  /// target attributes in the last peer.  Returns the session id; drive
  /// the network to completion, then fetch with GetResult().
  Result<SessionId> StartCoverSession(std::vector<std::string> path_peers,
                                      std::vector<Attribute> x_attrs,
                                      std::vector<Attribute> y_attrs,
                                      const SessionOptions& opts = {});

  /// \brief Result of a completed session started at this peer.
  Result<const SessionResult*> GetResult(SessionId session) const;

  /// \brief Message entry point (wired by Attach).
  void HandleMessage(const Message& msg);

 private:
  // ---- reliability layer (ack / retransmit / dedup / reorder) ----
  //
  // Every protocol-critical message (SessionInit, ComputePlan, CoverBatch,
  // FinalRows) travels on a *channel* — (session, kind, partition, peer) —
  // with a 1-based sequence number.  The receiver acks every accepted
  // copy, suppresses duplicates, and holds out-of-order arrivals in a
  // bounded reorder buffer so handlers always observe channel order (this
  // is what keeps covers byte-identical under loss and jitter).  The
  // sender retransmits with exponential backoff until acked; exhausting
  // the retries declares the destination unreachable and fails the
  // session loudly, naming the peer and the phase.
  enum ReliableKind : uint8_t {
    kRelInit = 0,
    kRelPlan = 1,
    kRelBatch = 2,
    kRelFinal = 3,
  };
  /// Sentinel partition for error-bearing FinalRows (failure reports are
  /// their own channel, so they cannot collide with data sequences).
  static constexpr uint64_t kErrorPartition = ~0ull;
  static constexpr size_t kMaxReorderPerChannel = 1024;
  static constexpr size_t kMaxParkedMessages = 512;

  // (session, kind, partition, remote peer) — the remote is the
  // destination on the send side and the source on the receive side.
  using ChannelKey = std::tuple<SessionId, uint8_t, uint64_t, std::string>;
  // A channel key plus the sequence number, identifying one send.
  using SendKey =
      std::tuple<SessionId, uint8_t, uint64_t, std::string, uint64_t>;

  struct OutstandingSend {
    Message msg;  // full envelope, seq already stamped
    int attempts = 0;            // transmissions so far
    int64_t timeout_us = 0;      // wait before the next retransmission
    int64_t base_timeout_us = 0;
    int max_retransmits = 0;
    Network::TimerId timer = 0;
    std::string phase;      // human-readable, for failure messages
    std::string initiator;  // where a failure report must go
  };
  struct RecvChannel {
    uint64_t next_seq = 1;
    std::map<uint64_t, Message> parked;  // out-of-order, awaiting next_seq
  };

  // Dispatches `msg` to the protocol handlers (post-reliability).
  void Dispatch(const Message& msg);
  // Stamps a sequence number, sends, and arms the retransmit timer.
  Status SendReliable(SessionId session, uint8_t kind, uint64_t partition,
                      Message msg, int64_t timeout_us, int max_retransmits,
                      const char* phase, const std::string& initiator);
  void HandleRetransmitTimer(const SendKey& key);
  void OnAck(const Message& msg);
  // Receive side: ack, dedup, reorder, then Dispatch in channel order.
  void AdmitSequenced(const Message& msg, uint8_t kind, SessionId session,
                      uint64_t partition, uint64_t seq);
  void SendAck(const std::string& to, SessionId session, uint8_t kind,
               uint64_t partition, uint64_t seq);
  // Drops every outstanding send of `session` and cancels its timers.
  void CancelSessionSends(SessionId session);

  // ---- information-gathering phase ----
  void OnSessionInit(const Message& msg);
  // Merges upstream partition summaries with this peer's own hop
  // partitions; `hop` is this peer's hop index.
  std::vector<PartitionSummary> MergeSummaries(
      const std::vector<PartitionSummary>& upstream, size_t hop,
      const std::vector<MappingConstraint>& own);
  void DistributePlan(const SessionSpec& spec,
                      std::vector<PartitionSummary> partitions);

  // ---- computation phase ----
  struct PartState {
    bool involved = false;     // this peer owns members of the partition
    bool is_starter = false;   // my hop == partition's last hop
    bool is_terminal = false;  // my hop == partition's first hop
    std::vector<std::string> keep_names;    // endpoint attrs kept
    std::vector<std::string> needed_names;  // what downstream-of-me needs
    FreeTable local;           // join of my member tables
    std::optional<FreeTable> emitted;  // dedup of rows already streamed
    std::unique_ptr<MappingCache> cache;
    bool any_rows = false;     // satisfiability witness seen
    bool done = false;
  };
  struct ParticipantState {
    SessionSpec spec;
    std::vector<PartitionSummary> partitions;
    size_t my_hop = 0;
    std::map<size_t, PartState> parts;
    // The session failed here (or a failure report passed through):
    // later-arriving batches are acked but ignored.
    bool failed = false;
  };
  struct InitiatorState {
    SessionSpec spec;
    std::vector<Attribute> x_attrs;
    std::vector<Attribute> y_attrs;
    SessionOptions opts;
    SessionResult result;
    std::vector<bool> partition_done;
    bool plan_received = false;
    // Final rows that raced ahead of the plan message.
    std::vector<FinalRowsMsg> pending_final;
    // Plan partitions, kept to name the terminal peers a timed-out
    // session is still waiting on.
    std::vector<PartitionSummary> plan_partitions;
    Network::TimerId deadline_timer = 0;  // 0 = none pending
  };

  void OnComputePlan(const Message& msg);
  void OnCoverBatch(const Message& msg);
  void OnFinalRows(const Message& msg);
  void OnPing(const Message& msg);
  void OnPong(const Message& msg);
  void OnSearch(const Message& msg);
  void OnSearchHit(const Message& msg);

  // Evaluates `search` against local data, replying to the origin, and
  // forwards translated copies to acquaintances.
  void HandleSearch(const SearchMsg& search, const std::string& from);

  // ---- semi-join prefiltering (SessionSpec::semijoin_filters) ----
  // Rows of `table` surviving the incoming per-attribute value filters
  // (rows whose ground X cell at a filtered attribute cannot match any
  // upstream value are dropped; sound by construction).
  static std::vector<Mapping> ReducedRows(
      const MappingTable& table,
      const std::map<std::string, ValueFilter>& filters);
  // Per-next-peer-attribute filters of the values `own`'s (reduced)
  // tables can produce on their Y side.
  std::map<std::string, ValueFilter> ComputeForwardFilters(
      const std::vector<MappingConstraint>& own,
      const std::map<std::string, ValueFilter>& incoming) const;

  // Starts streaming for partitions whose last hop is this peer.
  void StartPartitions(ParticipantState* state);
  // Joins `incoming` with the local tables of partition `part_idx` and
  // streams the results onward; pass nullptr for starter-originated rows.
  Status ProcessRows(ParticipantState* state, size_t part_idx,
                     const FreeTable* incoming, bool eos);
  // Emits `rows` through the partition's cache toward the next peer (or
  // the initiator when terminal).
  Status EmitRows(ParticipantState* state, size_t part_idx,
                  std::vector<Mapping> rows, bool eos);
  Status SendBatch(ParticipantState* state, size_t part_idx,
                   std::vector<Mapping> rows, bool eos);

  // Initiator side: integrates final rows, finishes when all EOS'd.
  void IntegrateFinalRows(const FinalRowsMsg& final_rows);
  void FinishSession(InitiatorState* session);
  // Initiator-side session deadline (SessionOptions::session_deadline_us).
  void OnSessionDeadline(SessionId session);
  // Terminates the session at the initiator with `status`: cancels the
  // deadline timer and pending retransmissions, marks the result done.
  void MarkInitiatorFailed(InitiatorState* session, Status status);

  // Fails the session, reliably reporting `status` to the initiator.
  // The hints cover callers that fail before any participant state
  // exists (e.g. an unreachable next hop during information gathering).
  void FailSession(SessionId id, const Status& status,
                   const std::string& initiator_hint = "",
                   int64_t timeout_us = 0, int max_retransmits = -1);
  // Bounded FIFO for messages of sessions this peer knows nothing about
  // yet (racing ahead of the plan); overflow evicts the oldest.
  void ParkUnknownSession(const Message& msg);

  std::string id_;
  AttributeSet attributes_;
  Network* network_ = nullptr;
  std::map<std::string, std::vector<MappingConstraint>> constraints_;
  std::map<SessionId, ParticipantState> participant_sessions_;
  std::map<SessionId, InitiatorState> initiator_sessions_;
  // Cover batches that arrived before this peer's ComputePlan message,
  // bounded by kMaxParkedMessages across all sessions.
  std::deque<Message> parked_unknown_session_;
  // Reliability state (see the reliability-layer section above).
  std::map<ChannelKey, uint64_t> next_send_seq_;
  std::map<SendKey, OutstandingSend> outstanding_sends_;
  std::map<ChannelKey, RecvChannel> recv_channels_;
  // Per-session semi-join filters received during information gathering.
  std::map<SessionId, std::map<std::string, ValueFilter>> incoming_filters_;
  std::map<std::string, int> ponged_;
  std::set<uint64_t> seen_pings_;
  std::vector<Relation> data_;
  std::map<uint64_t, SearchState> searches_;  // searches started here
  // (search id, query fingerprint) pairs already processed — the same
  // search can legitimately reach a peer twice with different translated
  // keys via different paths.
  std::set<std::pair<uint64_t, size_t>> seen_searches_;
  uint64_t next_local_id_ = 1;
};

}  // namespace hyperion

#endif  // HYPERION_P2P_PEER_H_
