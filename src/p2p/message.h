// Typed messages exchanged by peers.
//
// The system runs in one process, so payloads carry real objects rather
// than wire bytes; ByteSize() estimates the serialized size so the
// simulated network (network.h) can model transmission cost and report
// traffic statistics.  Message kinds:
//
//  * Ping/Pong       — Gnutella-style discovery flooding (gnutella.h).
//  * SessionInit     — the information-gathering phase (§6.3.1): travels
//                      P1 → ... → P_{n-1} accumulating inferred-partition
//                      summaries (attribute sets only; no mappings move).
//  * ComputePlan     — the full inferred-partition plan, distributed by
//                      P_{n-1} to every participant when gathering ends.
//  * CoverBatch      — the computation phase (§6.3.2): a cache-sized batch
//                      of partial-cover mappings streamed toward P1.
//  * FinalRows       — per-partition cover rows delivered to the
//                      initiator by the partition's terminal peer.
//  * Ack             — reliability acknowledgement for one sequenced
//                      session message (peer.h's retransmit layer).
//  * Heartbeat       — cluster membership beacon (cluster/membership.h).
//  * ShardFetch /    — coordinator ↔ storage shard transfer for the
//    ShardRows         cluster runtime (cluster/remote_tables.h).

#ifndef HYPERION_P2P_MESSAGE_H_
#define HYPERION_P2P_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "core/mapping.h"
#include "core/query.h"
#include "core/value_filter.h"
#include "core/schema.h"

namespace hyperion {

using SessionId = uint64_t;

/// \brief Discovery ping, flooded along acquaintance edges with a TTL.
struct PingMsg {
  uint64_t ping_id = 0;
  std::string origin;
  int ttl = 0;
  int hops = 0;
};

/// \brief Reply to a ping, routed back to the origin.
struct PongMsg {
  uint64_t ping_id = 0;
  std::string responder;
  int hops = 0;
};

/// \brief One constraint belonging to a partition: where it lives and
/// which attributes it spans (attribute names are what downstream peers
/// need to plan their projections).
struct PartitionMemberRef {
  size_t hop = 0;  // hop h spans peers h -> h+1
  std::string table_name;
  std::vector<std::string> attr_names;  // X ∪ Y of the constraint
};

/// \brief Summary of one (inferred) partition: its member constraints and
/// the union of their attributes.  This is all the information the
/// gathering phase moves — never the mappings themselves.
struct PartitionSummary {
  std::vector<PartitionMemberRef> members;
  std::vector<std::string> attr_names;
  size_t first_hop = 0;
  size_t last_hop = 0;
};

/// \brief Session parameters every control message carries.
struct SessionSpec {
  SessionId id = 0;
  std::vector<std::string> path_peers;  // P1 ... Pn
  std::vector<std::string> x_names;     // endpoints of the cover
  std::vector<std::string> y_names;
  size_t cache_capacity = 64;           // per-peer mapping cache
  // Compose limits every participant applies to its local joins (see
  // ComposeOptions); exceeding them fails the session loudly instead of
  // exhausting a peer's memory.
  size_t materialize_limit = 4096;
  size_t max_result_rows = 2'000'000;
  /// Semi-join prefiltering: the gathering phase additionally ships, per
  /// next-peer attribute, a Bloom filter of the values the sender's
  /// (already reduced) tables can produce there; the receiver drops rows
  /// that could never join before computing or streaming anything.
  bool semijoin_filters = false;
  /// Reliability parameters, carried in the spec so every participant
  /// retransmits on the same schedule the initiator chose.
  int64_t retransmit_timeout_us = 500'000;  // initial; doubles per retry
  int max_retransmits = 5;                  // then the peer is unreachable
};

/// \brief Information-gathering message (forward pass).
struct SessionInitMsg {
  SessionSpec spec;
  std::vector<PartitionSummary> partitions;  // merged so far
  /// With spec.semijoin_filters: per receiving-peer attribute, the values
  /// the sender's hop tables can produce (see SessionSpec).
  std::map<std::string, ValueFilter> forward_filters;
  /// Reliability sequence number, 1-based per sender channel; 0 means
  /// "unsequenced" (delivered straight to the handler, no ack/dedup).
  uint64_t seq = 0;
};

/// \brief The final plan, sent to each participating peer.
struct ComputePlanMsg {
  SessionSpec spec;
  std::vector<PartitionSummary> partitions;
  uint64_t seq = 0;  // see SessionInitMsg::seq
};

/// \brief A streamed batch of partial-cover rows for one partition,
/// flowing from peer `from_hop+1`'s side toward P1.
struct CoverBatchMsg {
  SessionId session = 0;
  size_t partition = 0;  // index into the plan's partitions
  Schema schema;         // schema of `rows`
  std::vector<Mapping> rows;
  bool eos = false;      // no more batches for this partition
  uint64_t seq = 0;      // see SessionInitMsg::seq
};

/// \brief Final per-partition cover rows, sent to the initiator.
struct FinalRowsMsg {
  SessionId session = 0;
  size_t partition = 0;
  Schema schema;
  std::vector<Mapping> rows;
  bool eos = false;
  bool satisfiable = true;  // meaningful on eos (middle-only partitions)
  std::string error;        // nonempty => the session failed at a peer
  int32_t error_code = 0;   // StatusCode of `error` (0 = unset => Internal)
  uint64_t seq = 0;         // see SessionInitMsg::seq
};

/// \brief Acknowledges receipt of one sequenced session message, echoing
/// the (kind, partition, seq) channel coordinates so the sender can stop
/// retransmitting it.  Acks themselves are unsequenced: a lost ack just
/// means a retransmission the receiver's dedup discards.
struct AckMsg {
  SessionId session = 0;
  uint8_t kind = 0;        // ReliableKind of the message being acked
  uint64_t partition = 0;  // 0 for kinds without a partition
  uint64_t seq = 0;
};

/// \brief Gnutella-style value search (§1–§2): a selection query flooded
/// along acquaintance edges, with its keys TRANSLATED through each hop's
/// mapping tables before forwarding.
struct SearchMsg {
  uint64_t search_id = 0;
  std::string origin;
  int ttl = 0;
  SelectionQuery query;
  /// False when some translation along the way had an infinite image.
  bool complete = true;
};

/// \brief Data tuples a peer found for a search, routed to the origin.
struct SearchHitMsg {
  uint64_t search_id = 0;
  std::string responder;
  Schema schema;
  std::vector<Tuple> tuples;
  /// Whether the chain of translations that produced the responder's
  /// query was exact (best effort: incomplete hit-less branches are not
  /// reported — flooding has no global termination detection).
  bool complete = true;
};

/// \brief Cluster membership beacon (cluster/membership.h), sent by every
/// cluster node to every peer it knows an address for.  Carries the
/// sender's own listen address so receivers can learn addresses of nodes
/// that joined on ephemeral ports (the sender may know us before we know
/// it).  Unsequenced: a lost heartbeat is repaired by the next one.
struct HeartbeatMsg {
  std::string node;         // sender's cluster node id
  uint8_t role = 0;         // cluster::NodeRole as its enum value
  std::string listen_addr;  // sender's "host:port"
  uint64_t incarnation = 0; // bumped per process start
  uint64_t beat = 0;        // monotonic per incarnation
  /// Storage nodes piggyback the write version of every shard they
  /// replicate (cluster/write_path.h); parallel vectors, shards
  /// ascending.  Empty for coordinators and pre-write-path senders —
  /// anti-entropy treats an absent shard as "nothing to compare".
  std::vector<uint64_t> shards;
  std::vector<uint64_t> shard_versions;  // parallel to `shards`
  /// Live placement (cluster/placement.h): the sender's committed ring
  /// epoch and the storage roster that ring was built from.  Receivers
  /// adopt a strictly higher epoch by rebuilding the ring from
  /// `ring_nodes` (deterministic: the ring plants nodes sorted).  0 =
  /// pre-rebalance sender, nothing to adopt.
  uint64_t ring_epoch = 0;
  std::vector<std::string> ring_nodes;
  /// Mid-transition only (coordinator-announced): the epoch and roster
  /// the cluster is converging toward.  0/empty = no transition.
  uint64_t pending_epoch = 0;
  std::vector<std::string> pending_nodes;
  /// Address gossip: every roster member address the sender knows, as
  /// parallel vectors.  Storage siblings boot with unresolved (port 0)
  /// addresses for each other and cannot dial a peer they have never
  /// heard from; the coordinator knows everyone (config or StartJoin),
  /// so one beat fills the gaps.  Receivers only learn addresses for
  /// nodes they have no entry for — a node's own listen_addr remains
  /// authoritative for moves.
  std::vector<std::string> peer_nodes;
  std::vector<std::string> peer_addrs;  // parallel to `peer_nodes`
};

/// \brief Coordinator → storage: send me your slice of one table shard
/// (cluster/remote_tables.h).  Answered by exactly one ShardRowsMsg.
struct ShardFetchMsg {
  uint64_t request_id = 0;  // echoed by the response
  std::string table_name;
  uint64_t shard = 0;
  /// Ring epoch the sender resolved `shard`'s placement under.  A
  /// receiver whose committed epoch is higher rejects the fetch loudly
  /// (`cluster.epoch.stale`) so the sender re-resolves instead of
  /// reading a slice the receiver may have dropped.  0 = unstamped
  /// (pre-rebalance sender), always accepted.
  uint64_t ring_epoch = 0;
};

/// \brief Storage → coordinator: one shard slice of one table, or a loud
/// error.  Rows carry their original row indices so the coordinator can
/// reassemble the source table in its exact row order
/// (storage/shard_split.h).
struct ShardRowsMsg {
  uint64_t request_id = 0;
  std::string table_name;
  std::string node;          // responder's cluster node id
  uint64_t shard = 0;
  uint64_t version = 0;      // TableStore version the slice was cut at
  uint64_t total_rows = 0;   // full source table's row count
  Schema x_schema;
  Schema y_schema;
  std::vector<uint64_t> row_indices;  // original positions, ascending
  std::vector<Mapping> rows;          // parallel to row_indices
  std::string error;         // nonempty => the fetch failed at the node
  int32_t error_code = 0;    // StatusCode of `error` (0 = unset)
  uint64_t ring_epoch = 0;   // responder's committed ring epoch
};

/// \brief Coordinator → storage: apply one shard slice of one curator
/// write (cluster/write_path.h).  `shard_version` is the per-shard write
/// sequence number: the receiver applies the slice iff its current
/// version is at least `committed_floor` (every sequence in between was
/// burned by a failed write, and a slice is full shard state, so the
/// jump loses nothing), acks-without-applying duplicates (≤ current),
/// and rejects gaps below the floor as stale so anti-entropy can fill
/// them.  Also the reply to a RepairFetchMsg (with `repair` set);
/// `error` is nonempty when a repair source cannot serve an entry.
struct WriteSliceMsg {
  uint64_t request_id = 0;   // echoed by the WriteAckMsg / repair reply
  std::string origin;        // sender's cluster node id
  std::string table_name;
  uint64_t shard = 0;
  uint64_t shard_version = 0;  // per-shard write sequence this slice is
  // Last sequence the coordinator committed before this write: every
  // sequence in (committed_floor, shard_version) was burned by a failed
  // write, so a replica at or past the floor may apply across the gap.
  uint64_t committed_floor = 0;
  uint64_t table_version = 0;  // coordinator TableStore version to adopt
  uint64_t total_rows = 0;     // full post-write table's row count
  Schema x_schema;
  Schema y_schema;
  std::vector<uint64_t> row_indices;  // original positions, ascending
  std::vector<Mapping> rows;          // parallel to row_indices
  uint8_t repair = 0;        // 1 => reply to a RepairFetchMsg
  std::string error;         // repair replies only: fetch failed loudly
  int32_t error_code = 0;    // StatusCode of `error` (0 = unset)
  /// Ring epoch the write was fanned out under (0 = unstamped/repair).
  /// Purely diagnostic on the write path today: the coordinator's epoch
  /// is never behind a replica's, so the stale gate exists as a loud
  /// guardrail against reordered or replayed traffic.
  uint64_t ring_epoch = 0;
};

/// \brief Storage → coordinator: outcome of applying one WriteSliceMsg.
/// `shard_version` reports the replica's current version after the
/// attempt, so a coordinator can tell a duplicate (acked, version
/// already ≥) from a stale replica (version behind, `applied` = 0).
struct WriteAckMsg {
  uint64_t request_id = 0;
  std::string node;          // responder's cluster node id
  uint64_t shard = 0;
  uint8_t applied = 0;       // 1 => slice applied or was a duplicate
  uint64_t shard_version = 0;  // replica's version after the attempt
  std::string error;         // nonempty => the apply failed at the node
  int32_t error_code = 0;    // StatusCode of `error` (0 = unset)
  uint64_t ring_epoch = 0;   // responder's committed ring epoch
};

/// \brief Storage → storage: anti-entropy pull.  "Your heartbeat says
/// your `shard` is at a newer version than my `from_version`; send me
/// write-log entry `from_version` + 1."  Answered by one WriteSliceMsg
/// with `repair` set (or with `error` if the entry is gone).
struct RepairFetchMsg {
  uint64_t request_id = 0;
  std::string node;          // requester's cluster node id
  uint64_t shard = 0;
  uint64_t from_version = 0;  // requester's current shard version
};

/// \brief Storage → storage: rebalance handoff pull (cluster/node.h).
/// "The pending epoch makes me an owner of `shard`; send me your full
/// served state for it."  Sent by a new owner to one committed owner,
/// answered by exactly one HandoffRowsMsg.  Unlike anti-entropy (one
/// write-log entry per exchange), a handoff ships the whole shard in one
/// reply: the puller may own nothing yet, and the transition cannot
/// commit until it has everything.
struct HandoffFetchMsg {
  uint64_t request_id = 0;   // echoed by the HandoffRowsMsg
  std::string node;          // requester's cluster node id
  uint64_t shard = 0;
  /// The pending epoch being converged.  A receiver that knows a higher
  /// committed epoch rejects the pull (`cluster.epoch.stale`) — the
  /// transition it belonged to is already over.
  uint64_t ring_epoch = 0;
};

/// \brief Storage → storage: full-shard handoff snapshot, or a loud
/// error.  `slices` holds one WriteSliceMsg per table the responder
/// serves on `shard` (its live served state, not raw log entries);
/// `shard_version` is the responder's write-log version for the shard,
/// which the receiver installs as its version floor so later writes and
/// anti-entropy chain correctly from it.
struct HandoffRowsMsg {
  uint64_t request_id = 0;
  std::string node;          // responder's cluster node id
  uint64_t shard = 0;
  uint64_t shard_version = 0;  // responder's write-log shard version
  std::vector<WriteSliceMsg> slices;  // one per served table on `shard`
  std::string error;         // nonempty => the handoff failed at the node
  int32_t error_code = 0;    // StatusCode of `error` (0 = unset)
};

/// \brief Storage → coordinator: one gained shard is caught up.  The
/// coordinator commits the pending epoch only once every (shard, new
/// owner) pair of the transition's diff has acked it.
struct HandoffAckMsg {
  uint64_t request_id = 0;   // the HandoffFetchMsg id that completed
  std::string node;          // the new owner acking
  uint64_t shard = 0;
  uint64_t shard_version = 0;  // version floor the owner installed
  uint64_t rows = 0;         // mapping rows shipped (rows_shipped metric)
  uint64_t ring_epoch = 0;   // the pending epoch being acked
};

/// \brief Envelope delivered by the network.
struct Message {
  std::string from;
  std::string to;
  std::variant<PingMsg, PongMsg, SessionInitMsg, ComputePlanMsg,
               CoverBatchMsg, FinalRowsMsg, SearchMsg, SearchHitMsg, AckMsg,
               HeartbeatMsg, ShardFetchMsg, ShardRowsMsg, WriteSliceMsg,
               WriteAckMsg, RepairFetchMsg, HandoffFetchMsg, HandoffRowsMsg,
               HandoffAckMsg>
      payload;

  /// \brief Estimated wire size in bytes (headers + payload).
  size_t ByteSize() const;
  const char* TypeName() const;
};

/// \brief Estimated serialized size of one mapping.
size_t EstimateMappingBytes(const Mapping& m);

}  // namespace hyperion

#endif  // HYPERION_P2P_MESSAGE_H_
