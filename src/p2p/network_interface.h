// The network abstraction peers run on.  Two implementations:
//
//  * SimNetwork (network.h) — single-threaded discrete-event simulation
//    with a virtual clock; deterministic, models latency/bandwidth, and
//    charges measured compute to the clock.  The default for tests and
//    for the calibrated experiment harnesses.
//  * ThreadedNetwork (threaded_network.h) — one worker thread per peer,
//    real wall-clock time, real parallelism.  Demonstrates that the
//    protocol tolerates true concurrency (per-peer state is only ever
//    touched by the owning peer's thread).

#ifndef HYPERION_P2P_NETWORK_INTERFACE_H_
#define HYPERION_P2P_NETWORK_INTERFACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "p2p/message.h"

namespace hyperion {

/// \brief Aggregate traffic statistics.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  std::map<std::string, uint64_t> messages_by_type;
};

/// \brief Message transport between peers.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Network() = default;

  /// \brief Registers a peer; `handler` is invoked for each delivery.
  /// Handlers for one peer never run concurrently with each other.
  virtual Status RegisterPeer(const std::string& id, Handler handler) = 0;

  /// \brief Queues `msg` for delivery.  Callable from inside handlers.
  virtual Status Send(Message msg) = 0;

  /// \brief Time in microseconds — virtual for SimNetwork, wall for
  /// ThreadedNetwork.
  virtual int64_t now_us() const = 0;

  /// \brief Extra compute charge for the current handler's peer (no-op
  /// where time is real).
  virtual void ChargeCompute(int64_t micros) = 0;

  /// \brief Snapshot of the traffic counters.
  virtual NetworkStats stats() const = 0;

  /// \brief Zeroes the traffic counters (bench harnesses reset between
  /// sessions; ThreadedNetwork otherwise accumulates forever).
  virtual void ResetStats() = 0;
};

/// \brief Records one send into the default MetricRegistry
/// (net.messages_sent / net.bytes_sent, labeled by message type and
/// network kind).  Shared by both Network implementations.
void RecordNetworkSend(const char* network_kind, const Message& msg,
                       size_t bytes);

}  // namespace hyperion

#endif  // HYPERION_P2P_NETWORK_INTERFACE_H_
