// The network abstraction peers run on.  Two implementations:
//
//  * SimNetwork (network.h) — single-threaded discrete-event simulation
//    with a virtual clock; deterministic, models latency/bandwidth, and
//    charges measured compute to the clock.  The default for tests and
//    for the calibrated experiment harnesses.
//  * ThreadedNetwork (threaded_network.h) — one worker thread per peer,
//    real wall-clock time, real parallelism.  Demonstrates that the
//    protocol tolerates true concurrency (per-peer state is only ever
//    touched by the owning peer's thread).
//
// Both transports accept a FaultPlan: a deterministic (seedable)
// description of message loss, duplication, delay jitter, scripted link
// outages and peer crash/restart windows.  The fault layer sits below
// the peers — a dropped message simply never arrives — so the protocol
// must survive it with its own timeouts and retransmissions, which is
// what the ScheduleTimer API exists for.

#ifndef HYPERION_P2P_NETWORK_INTERFACE_H_
#define HYPERION_P2P_NETWORK_INTERFACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "p2p/message.h"

namespace hyperion {

/// \brief Aggregate traffic statistics.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  std::map<std::string, uint64_t> messages_by_type;
  // Fault-injection accounting (zero when no FaultPlan is installed).
  uint64_t drops_injected = 0;       // messages silently discarded
  uint64_t duplicates_injected = 0;  // extra copies delivered
  uint64_t crash_discards = 0;       // deliveries to a crashed peer
  uint64_t timers_fired = 0;         // ScheduleTimer callbacks executed
};

/// \brief A deterministic description of the faults a network injects.
///
/// All probabilities are per message copy; all times are in the owning
/// network's clock (virtual µs for SimNetwork, wall µs since
/// construction for ThreadedNetwork).  Given the same seed and the same
/// send sequence, SimNetwork replays the exact same faults.
struct FaultPlan {
  /// \brief Faults applied to one directed link.
  struct LinkFaults {
    double drop_rate = 0.0;       // P(message copy vanishes)
    double dup_rate = 0.0;        // P(an extra copy is delivered)
    int64_t delay_jitter_us = 0;  // extra delay ~ Uniform[0, jitter]
    /// Scripted outage windows [start, end) — messages departing inside
    /// one are dropped (models a link that is down for a while).
    std::vector<std::pair<int64_t, int64_t>> outages_us;

    bool any() const {
      return drop_rate > 0 || dup_rate > 0 || delay_jitter_us > 0 ||
             !outages_us.empty();
    }
  };

  /// \brief A peer that dies at crash_at_us and (optionally) comes back
  /// at restart_at_us (-1 = never).  While down it receives nothing and
  /// its timers do not fire; in-memory state survives the window (the
  /// model is an unreachable process, not a wiped disk).
  struct CrashWindow {
    int64_t crash_at_us = 0;
    int64_t restart_at_us = -1;
  };

  /// Faults for links without a per-link override.
  LinkFaults default_link;
  /// Per-(from, to) overrides.
  std::map<std::pair<std::string, std::string>, LinkFaults> links;
  /// Scripted peer crashes, by peer id.
  std::map<std::string, CrashWindow> crashes;
  /// Seed for the drop/dup/jitter draws.
  uint64_t seed = 1;

  /// \brief The faults governing the (from → to) link.
  const LinkFaults& ForLink(const std::string& from,
                            const std::string& to) const {
    auto it = links.find({from, to});
    return it == links.end() ? default_link : it->second;
  }

  /// \brief Whether `peer` is inside a crash window at time `t_us`.
  bool PeerDownAt(const std::string& peer, int64_t t_us) const {
    auto it = crashes.find(peer);
    if (it == crashes.end()) return false;
    const CrashWindow& w = it->second;
    return t_us >= w.crash_at_us &&
           (w.restart_at_us < 0 || t_us < w.restart_at_us);
  }

  /// \brief True when the plan can never inject anything.
  bool empty() const {
    if (default_link.any() || !crashes.empty()) return false;
    for (const auto& [link, faults] : links) {
      (void)link;
      if (faults.any()) return false;
    }
    return true;
  }
};

/// \brief Message transport between peers.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using TimerId = uint64_t;
  using TimerCallback = std::function<void()>;

  virtual ~Network() = default;

  /// \brief Registers a peer; `handler` is invoked for each delivery.
  /// Handlers for one peer never run concurrently with each other.
  virtual Status RegisterPeer(const std::string& id, Handler handler) = 0;

  /// \brief Queues `msg` for delivery.  Callable from inside handlers.
  /// Returning OK does NOT imply eventual delivery once a FaultPlan is
  /// installed — the fault layer may drop the message silently.
  virtual Status Send(Message msg) = 0;

  /// \brief Runs `cb` at `peer` after `delay_us` of this network's time
  /// (virtual for SimNetwork, wall for ThreadedNetwork).  The callback
  /// executes like a message handler: on the peer's timeline, never
  /// concurrently with the peer's other handlers, and not at all while
  /// the peer is inside a crash window.  Returns an id for CancelTimer.
  virtual Result<TimerId> ScheduleTimer(const std::string& peer,
                                        int64_t delay_us,
                                        TimerCallback cb) = 0;

  /// \brief Cancels a pending timer; no-op when it already fired or was
  /// already cancelled.
  virtual void CancelTimer(TimerId id) = 0;

  /// \brief Installs (or replaces) the fault plan.  Faults apply to
  /// sends issued after the call.
  virtual void SetFaultPlan(FaultPlan plan) = 0;

  /// \brief Time in microseconds — virtual for SimNetwork, wall for
  /// ThreadedNetwork.
  virtual int64_t now_us() const = 0;

  /// \brief Extra compute charge for the current handler's peer (no-op
  /// where time is real).
  virtual void ChargeCompute(int64_t micros) = 0;

  /// \brief Snapshot of the traffic counters.
  virtual NetworkStats stats() const = 0;

  /// \brief Zeroes the traffic counters (bench harnesses reset between
  /// sessions; ThreadedNetwork otherwise accumulates forever).
  virtual void ResetStats() = 0;
};

/// \brief Records one send into the default MetricRegistry
/// (net.messages_sent / net.bytes_sent, labeled by message type and
/// network kind).  Shared by both Network implementations.
void RecordNetworkSend(const char* network_kind, const Message& msg,
                       size_t bytes);

/// \brief Records one injected fault event (`net.drops_injected`,
/// `net.duplicates_injected`, `net.crash_discards`) labeled by network
/// kind.  Shared by both Network implementations.
void RecordFaultEvent(const char* metric, const char* network_kind);

}  // namespace hyperion

#endif  // HYPERION_P2P_NETWORK_INTERFACE_H_
