#include "p2p/fault.h"

#include "obs/metrics.h"

namespace hyperion {

void RecordFaultEvent(const char* metric, const char* network_kind) {
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricRegistry::Default()
        .GetCounter(metric, {{"network", network_kind}})
        ->Add(1);
  }
}

FaultInjector::SendDecision FaultInjector::OnSend(const std::string& from,
                                                  const std::string& to,
                                                  int64_t depart_us) {
  SendDecision decision;
  if (!active_) {
    decision.copy_jitter_us.push_back(0);
    return decision;
  }
  const FaultPlan::LinkFaults& faults = plan_.ForLink(from, to);
  for (const auto& [start, end] : faults.outages_us) {
    if (depart_us >= start && depart_us < end) {
      decision.dropped = true;
      return decision;
    }
  }
  if (faults.drop_rate > 0 && rng_.Bernoulli(faults.drop_rate)) {
    decision.dropped = true;
    return decision;
  }
  size_t copies = 1;
  if (faults.dup_rate > 0 && rng_.Bernoulli(faults.dup_rate)) copies = 2;
  for (size_t i = 0; i < copies; ++i) {
    int64_t jitter = faults.delay_jitter_us > 0
                         ? rng_.Uniform(0, faults.delay_jitter_us)
                         : 0;
    decision.copy_jitter_us.push_back(jitter);
  }
  return decision;
}

}  // namespace hyperion
