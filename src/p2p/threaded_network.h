// ThreadedNetwork: one worker thread per peer, real queues, wall-clock
// time — the peer protocol running under true concurrency, as it would on
// the paper's geographically distributed deployment.
//
// Concurrency contract: a peer's handler runs only on that peer's worker
// thread, one message at a time, so per-peer state needs no locking (the
// same invariant the single-threaded simulator provides).  Send() may be
// called from any thread.  Run() drives the network to quiescence: it
// returns once every queued message, every message those handlers sent,
// and every pending timer has been fully processed or cancelled.
//
// Timers (ScheduleTimer) and fault-jittered deliveries are driven by a
// scheduler thread that Run() spawns alongside the workers; when due they
// are routed through the target peer's worker queue, preserving the
// one-handler-at-a-time invariant.  Fault decisions (drop / duplicate /
// jitter) are drawn from the same seeded FaultInjector the simulator
// uses, though thread interleaving makes the draw *sequence* — and hence
// the exact outcome — nondeterministic here.

#ifndef HYPERION_P2P_THREADED_NETWORK_H_
#define HYPERION_P2P_THREADED_NETWORK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "p2p/fault.h"
#include "p2p/network_interface.h"

namespace hyperion {

/// \brief Real-thread transport.  Not copyable; Run() is not reentrant.
class ThreadedNetwork : public Network {
 public:
  ThreadedNetwork() = default;
  ~ThreadedNetwork() override;

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  Status RegisterPeer(const std::string& id, Handler handler) override;

  /// \brief Thread-safe; callable before Run() and from inside handlers.
  /// With a FaultPlan installed the message may be dropped, duplicated
  /// or delayed here.
  Status Send(Message msg) override;

  /// \brief Schedules `cb` on `peer`'s worker after `delay_us` of wall
  /// time.  A pending timer counts against quiescence, so Run() does not
  /// return while one is outstanding — cancel timers you no longer need.
  Result<TimerId> ScheduleTimer(const std::string& peer, int64_t delay_us,
                                TimerCallback cb) override;

  void CancelTimer(TimerId id) override;

  /// \brief Installs the fault plan.  Applies to sends issued after the
  /// call; thread-safe.
  void SetFaultPlan(FaultPlan plan) override;

  /// \brief Spawns the workers and the timer scheduler, waits for
  /// quiescence (no queued messages, no in-flight handlers, no pending
  /// timers), stops them, and returns elapsed wall µs.
  Result<int64_t> Run();

  /// \brief Wall-clock µs since this network was constructed.
  int64_t now_us() const override;

  /// \brief No-op: time is real here.
  void ChargeCompute(int64_t micros) override { (void)micros; }

  NetworkStats stats() const override;
  void ResetStats() override;

 private:
  struct QueuedMessage {
    Message msg;
    int64_t enqueued_us = 0;  // wall, for queue-wait accounting
    // Timer entries: run `timer_cb` instead of delivering `msg`.
    TimerId timer_id = 0;  // 0 = message entry
    TimerCallback timer_cb;
  };
  struct PeerWorker {
    std::string id;
    Handler handler;
    std::deque<QueuedMessage> queue;  // guarded by ThreadedNetwork::mutex_
    std::condition_variable cv;
    std::thread thread;
  };
  // A not-yet-due timer or fault-delayed message delivery, held by the
  // scheduler until `due_us`, then moved onto the peer's worker queue.
  struct PendingEntry {
    TimerId id = 0;  // 0 for delayed message deliveries
    std::string peer;
    TimerCallback cb;
    Message msg;
    bool is_message = false;
  };

  void WorkerLoop(PeerWorker* worker);
  void SchedulerLoop();
  void DecrementOutstanding();  // callers hold mutex_

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<PeerWorker>> peers_;
  std::condition_variable quiescent_cv_;
  // Queued + currently-handled messages + pending/not-yet-run timers.
  int64_t outstanding_ = 0;
  bool stopping_ = false;
  bool running_ = false;
  NetworkStats stats_;

  FaultInjector faults_;                          // guarded by mutex_
  std::multimap<int64_t, PendingEntry> pending_;  // keyed by due wall µs
  std::condition_variable scheduler_cv_;
  std::thread scheduler_;
  TimerId next_timer_id_ = 1;
  // Timers that exist but have not yet run their callback (pending or on
  // a worker queue), and those cancelled after moving to a worker queue.
  std::set<TimerId> live_timers_;
  std::set<TimerId> cancelled_timers_;

  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace hyperion

#endif  // HYPERION_P2P_THREADED_NETWORK_H_
