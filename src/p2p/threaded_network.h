// ThreadedNetwork: one worker thread per peer, real queues, wall-clock
// time — the peer protocol running under true concurrency, as it would on
// the paper's geographically distributed deployment.
//
// Concurrency contract: a peer's handler runs only on that peer's worker
// thread, one message at a time, so per-peer state needs no locking (the
// same invariant the single-threaded simulator provides).  Send() may be
// called from any thread.  Run() drives the network to quiescence: it
// returns once every queued message, every message those handlers sent,
// and every pending timer has been fully processed or cancelled.
//
// Timers (ScheduleTimer) and fault-jittered deliveries are driven by a
// scheduler thread that Run() spawns alongside the workers; when due they
// are routed through the target peer's worker queue, preserving the
// one-handler-at-a-time invariant.  Fault decisions (drop / duplicate /
// jitter) are drawn from the same seeded FaultInjector the simulator
// uses, though thread interleaving makes the draw *sequence* — and hence
// the exact outcome — nondeterministic here.

#ifndef HYPERION_P2P_THREADED_NETWORK_H_
#define HYPERION_P2P_THREADED_NETWORK_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "p2p/fault.h"
#include "p2p/network_interface.h"

namespace hyperion {

/// \brief Real-thread transport.  Not copyable; Run() is not reentrant.
class ThreadedNetwork : public Network {
 public:
  ThreadedNetwork() = default;
  ~ThreadedNetwork() override;

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  Status RegisterPeer(const std::string& id, Handler handler) override;

  /// \brief Thread-safe; callable before Run() and from inside handlers.
  /// With a FaultPlan installed the message may be dropped, duplicated
  /// or delayed here.
  Status Send(Message msg) override;

  /// \brief Schedules `cb` on `peer`'s worker after `delay_us` of wall
  /// time.  A pending timer counts against quiescence, so Run() does not
  /// return while one is outstanding — cancel timers you no longer need.
  Result<TimerId> ScheduleTimer(const std::string& peer, int64_t delay_us,
                                TimerCallback cb) override;

  void CancelTimer(TimerId id) override;

  /// \brief Installs the fault plan.  Applies to sends issued after the
  /// call; thread-safe.
  void SetFaultPlan(FaultPlan plan) override;

  /// \brief Spawns the workers and the timer scheduler, waits for
  /// quiescence (no queued messages, no in-flight handlers, no pending
  /// timers), stops them, and returns elapsed wall µs.
  Result<int64_t> Run();

  /// \brief Wall-clock µs since this network was constructed.
  int64_t now_us() const override;

  /// \brief No-op: time is real here.
  void ChargeCompute(int64_t micros) override { (void)micros; }

  NetworkStats stats() const override;
  void ResetStats() override;

 private:
  struct QueuedMessage {
    Message msg;
    int64_t enqueued_us = 0;  // wall, for queue-wait accounting
    // Timer entries: run `timer_cb` instead of delivering `msg`.
    TimerId timer_id = 0;  // 0 = message entry
    TimerCallback timer_cb;
  };
  struct PeerWorker {
    std::string id;
    Handler handler;
    // Guarded by the owning ThreadedNetwork's mutex_.  (Thread safety
    // annotations cannot express a nested struct's field being guarded
    // by the enclosing object's mutex — there is no instance path from
    // PeerWorker to the network — so this one invariant stays a comment;
    // every access in threaded_network.cc happens inside a MutexLock.)
    std::deque<QueuedMessage> queue;
    CondVar cv;
    // Owned by the single thread driving Run() (and the destructor):
    // spawned after registration closes, joined before Run returns.
    std::thread thread;
  };
  // A not-yet-due timer or fault-delayed message delivery, held by the
  // scheduler until `due_us`, then moved onto the peer's worker queue.
  struct PendingEntry {
    TimerId id = 0;  // 0 for delayed message deliveries
    std::string peer;
    TimerCallback cb;
    Message msg;
    bool is_message = false;
  };

  void WorkerLoop(PeerWorker* worker);
  void SchedulerLoop();
  void DecrementOutstanding() REQUIRES(mutex_);

  mutable Mutex mutex_;
  // The map's *shape* is guarded: registration mutates it under mutex_
  // and refuses while running_.  Run() snapshots the stable PeerWorker
  // pointers under the lock before spawning/joining their threads.
  std::map<std::string, std::unique_ptr<PeerWorker>> peers_
      GUARDED_BY(mutex_);
  CondVar quiescent_cv_;
  // Queued + currently-handled messages + pending/not-yet-run timers.
  int64_t outstanding_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  bool running_ GUARDED_BY(mutex_) = false;
  NetworkStats stats_ GUARDED_BY(mutex_);

  FaultInjector faults_ GUARDED_BY(mutex_);
  std::multimap<int64_t, PendingEntry> pending_
      GUARDED_BY(mutex_);  // keyed by due wall µs
  CondVar scheduler_cv_;
  std::thread scheduler_;  // owned by the thread driving Run()
  TimerId next_timer_id_ GUARDED_BY(mutex_) = 1;
  // Timers that exist but have not yet run their callback (pending or on
  // a worker queue), and those cancelled after moving to a worker queue.
  std::set<TimerId> live_timers_ GUARDED_BY(mutex_);
  std::set<TimerId> cancelled_timers_ GUARDED_BY(mutex_);

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace hyperion

#endif  // HYPERION_P2P_THREADED_NETWORK_H_
