// ThreadedNetwork: one worker thread per peer, real queues, wall-clock
// time — the peer protocol running under true concurrency, as it would on
// the paper's geographically distributed deployment.
//
// Concurrency contract: a peer's handler runs only on that peer's worker
// thread, one message at a time, so per-peer state needs no locking (the
// same invariant the single-threaded simulator provides).  Send() may be
// called from any thread.  Run() drives the network to quiescence: it
// returns once every queued message, and every message those handlers
// sent, has been fully processed.

#ifndef HYPERION_P2P_THREADED_NETWORK_H_
#define HYPERION_P2P_THREADED_NETWORK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "p2p/network_interface.h"

namespace hyperion {

/// \brief Real-thread transport.  Not copyable; Run() is not reentrant.
class ThreadedNetwork : public Network {
 public:
  ThreadedNetwork() = default;
  ~ThreadedNetwork() override;

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  Status RegisterPeer(const std::string& id, Handler handler) override;

  /// \brief Thread-safe; callable before Run() and from inside handlers.
  Status Send(Message msg) override;

  /// \brief Spawns the workers, waits for quiescence (no queued and no
  /// in-flight messages), stops them, and returns elapsed wall µs.
  Result<int64_t> Run();

  /// \brief Wall-clock µs since this network was constructed.
  int64_t now_us() const override;

  /// \brief No-op: time is real here.
  void ChargeCompute(int64_t micros) override { (void)micros; }

  NetworkStats stats() const override;
  void ResetStats() override;

 private:
  struct QueuedMessage {
    Message msg;
    int64_t enqueued_us = 0;  // wall, for queue-wait accounting
  };
  struct PeerWorker {
    Handler handler;
    std::deque<QueuedMessage> queue;  // guarded by ThreadedNetwork::mutex_
    std::condition_variable cv;
    std::thread thread;
  };

  void WorkerLoop(PeerWorker* worker);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<PeerWorker>> peers_;
  std::condition_variable quiescent_cv_;
  int64_t outstanding_ = 0;  // queued + currently-handled messages
  bool stopping_ = false;
  bool running_ = false;
  NetworkStats stats_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace hyperion

#endif  // HYPERION_P2P_THREADED_NETWORK_H_
