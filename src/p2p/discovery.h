// Acquaintance graph and path discovery.
//
// Two peers are acquainted when one stores a mapping table whose Y
// attributes belong to the other (§7: "we assumed two sources to be
// acquainted if one contained a mapping table with attributes from the
// other").  Edges are directed by the tables' X → Y orientation, which is
// the direction covers compose along.  EnumeratePaths lists the simple
// paths between two peers up to a hop bound — the paper caps paths of
// interest at Gnutella's 7 hops.

#ifndef HYPERION_P2P_DISCOVERY_H_
#define HYPERION_P2P_DISCOVERY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/query.h"
#include "p2p/peer.h"

namespace hyperion {

/// \brief Directed acquaintance graph over peer ids.
class AcquaintanceGraph {
 public:
  static constexpr size_t kGnutellaMaxHops = 7;

  AcquaintanceGraph() = default;

  /// \brief Builds the graph from the peers' stored constraints.
  static AcquaintanceGraph FromPeers(const std::vector<const PeerNode*>& peers);

  void AddEdge(const std::string& from, const std::string& to);

  const std::set<std::string>& Neighbors(const std::string& peer) const;

  /// \brief All simple directed paths `from` → ... → `to` with at most
  /// `max_peers` peers, ordered by length then lexicographically.
  std::vector<std::vector<std::string>> EnumeratePaths(
      const std::string& from, const std::string& to,
      size_t max_peers = kGnutellaMaxHops + 1) const;

  std::vector<std::string> PeerIds() const;

 private:
  std::map<std::string, std::set<std::string>> adjacency_;
};

/// \brief Translates `query` (over attributes of peer `from`) along every
/// acquaintance path from `from` to `to` of at most `max_peers` peers and
/// merges the outcomes — the query-side analogue of Figure 10's
/// multi-path inference: different paths may translate different keys.
///
/// Paths with no applicable tables are skipped; NotFound when no path
/// translates at all.  The merged outcome is complete only when every
/// contributing path's translation was exact.
Result<TranslationOutcome> TranslateAcrossNetwork(
    const std::vector<const PeerNode*>& peers, const std::string& from,
    const std::string& to, const SelectionQuery& query,
    size_t max_peers = AcquaintanceGraph::kGnutellaMaxHops + 1);

}  // namespace hyperion

#endif  // HYPERION_P2P_DISCOVERY_H_
