// SimNetwork: a discrete-event simulation of the peer-to-peer network.
//
// The paper's experiments ran on geographically distributed machines; we
// substitute a virtual-time simulator that preserves the properties those
// experiments measure: message latency and bandwidth are modeled (so
// traffic patterns matter), peers are busy while computing (handler
// execution is measured on the host's steady clock and charged to the
// peer's virtual timeline), and independent peers overlap in virtual time
// (so streaming and per-partition parallelism show up even on one host
// core).
//
// Handlers run to completion at a virtual instant window: a message
// arriving at time t at a peer busy until b starts processing at
// max(t, b); sends issued during the handler depart at the processing
// start plus the compute time consumed so far.
//
// With a FaultPlan installed (SetFaultPlan) the simulator additionally
// drops, duplicates and jitters messages and discards deliveries to
// crashed peers — fully deterministically from the plan's seed.  Timers
// (ScheduleTimer) share the event queue, so timeouts interleave with
// deliveries in exact virtual-time order.

#ifndef HYPERION_P2P_NETWORK_H_
#define HYPERION_P2P_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "p2p/fault.h"
#include "p2p/message.h"
#include "p2p/network_interface.h"

namespace hyperion {

/// \brief Discrete-event network simulator with a virtual clock in
/// microseconds.
class SimNetwork : public Network {
 public:
  struct Options {
    /// One-way per-message latency, microseconds (WAN-ish default 40ms).
    int64_t latency_us = 40'000;
    /// Per-link overrides of latency_us, keyed (from, to) — the paper's
    /// peers were geographically distributed, so links were not uniform.
    std::map<std::pair<std::string, std::string>, int64_t> link_latency_us;
    /// Transmission cost per payload byte, microseconds (default models
    /// ~10 MB/s of effective peer uplink).
    double us_per_byte = 0.1;
    /// Fixed receive-side processing charge per delivered message
    /// (framing, dispatch); this is what makes very small stream batches
    /// expensive, as in the paper's cache-size discussion.
    int64_t per_message_overhead_us = 2'000;
    /// Scale factor from measured host compute time to virtual time.
    double compute_scale = 1.0;
  };

  SimNetwork();  // default options
  explicit SimNetwork(Options options) : options_(options) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// \brief Registers a peer; `handler` is invoked for each delivery.
  Status RegisterPeer(const std::string& id, Handler handler) override;

  bool HasPeer(const std::string& id) const { return peers_.count(id) > 0; }

  /// \brief Queues `msg` for delivery.  Legal both from inside a handler
  /// (departure time = sender's current virtual time) and from outside
  /// (departure = current global virtual time).  With a FaultPlan the
  /// message may be dropped, duplicated or delayed here.
  Status Send(Message msg) override;

  /// \brief Schedules `cb` on `peer`'s virtual timeline at
  /// now_us() + delay_us.  Timers are exempt from fault injection but
  /// are discarded if the peer is inside a crash window when they fire.
  Result<TimerId> ScheduleTimer(const std::string& peer, int64_t delay_us,
                                TimerCallback cb) override;

  void CancelTimer(TimerId id) override;

  /// \brief Installs the fault plan (deterministic from plan.seed).
  void SetFaultPlan(FaultPlan plan) override;

  /// \brief Dispatches events until the queue drains.  Returns the final
  /// virtual time.
  Result<int64_t> Run();

  /// \brief Virtual clock (µs).  During a handler this is the handling
  /// peer's current time (processing start + compute charged so far).
  int64_t now_us() const override;

  /// \brief Additional explicit compute charge (µs of virtual time) for
  /// the currently running handler's peer.
  void ChargeCompute(int64_t micros) override;

  NetworkStats stats() const override { return stats_; }
  void ResetStats() override { stats_ = NetworkStats(); }

  const Options& options() const { return options_; }

 private:
  struct Event {
    int64_t time;
    uint64_t seq;  // FIFO tie-break
    int64_t depart;  // virtual send time, for delivery-latency accounting
    Message msg;
    // Timer events: fire `timer_cb` at `timer_peer` (msg unused).
    TimerId timer_id = 0;  // 0 = message event
    std::string timer_peer;
    TimerCallback timer_cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  // Virtual time consumed so far by the currently running handler.
  int64_t CurrentComputeMicros() const;

  // Runs `body` in a handler context for `peer` starting at virtual
  // `start`, charging `initial_charge_us` (per-message overhead for
  // deliveries, zero for timer callbacks) plus measured compute to the
  // peer's clock.
  template <typename Body>
  void RunOnPeer(const std::string& peer, int64_t start,
                 int64_t initial_charge_us, Body&& body);

  Options options_;
  std::map<std::string, Handler> peers_;
  std::map<std::string, int64_t> busy_until_;
  // FIFO guarantee per (from, to) link — only while no fault plan is
  // active (fault jitter deliberately reorders).
  std::map<std::pair<std::string, std::string>, int64_t> last_arrival_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  NetworkStats stats_;
  uint64_t next_seq_ = 0;

  FaultInjector faults_;
  TimerId next_timer_id_ = 1;
  std::set<TimerId> cancelled_timers_;

  int64_t clock_us_ = 0;           // global virtual clock
  bool in_handler_ = false;
  std::string current_peer_;
  int64_t handler_start_us_ = 0;   // virtual processing start
  int64_t handler_wall_start_ns_ = 0;
  int64_t handler_extra_charge_us_ = 0;
};

}  // namespace hyperion

#endif  // HYPERION_P2P_NETWORK_H_
