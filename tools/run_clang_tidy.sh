#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the tree.
#
# Usage:
#   tools/run_clang_tidy.sh [--diff <base-ref>] [--build-dir <dir>] [-- <extra clang-tidy args>]
#
#   Default: every .cc file under src/ tools/ bench/ examples/ tests/.
#   --diff <base-ref>: only files changed since <base-ref> (CI uses
#     origin/main for pull requests) — fast pre-push mode.
#   --build-dir <dir>: where to configure the compile database
#     (default: build-tidy).
#
# The script configures a dedicated CMake build dir with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON so clang-tidy sees the exact include
# paths and definitions the real build uses.  Requires clang-tidy and a
# Clang toolchain on PATH; exits 2 (distinct from findings) when absent
# so callers can tell "environment missing" from "lint failed".

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="build-tidy"
diff_base=""
extra_args=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --diff)
      diff_base="$2"
      shift 2
      ;;
    --build-dir)
      build_dir="$2"
      shift 2
      ;;
    --)
      shift
      extra_args=("$@")
      break
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found on PATH" >&2
  exit 2
fi

cxx="${CXX:-}"
if [[ -z "${cxx}" ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    cxx="clang++"
  else
    echo "clang++ not found on PATH (set CXX to a Clang compiler)" >&2
    exit 2
  fi
fi

cmake -S . -B "${build_dir}" \
  -DCMAKE_CXX_COMPILER="${cxx}" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  >/dev/null

if [[ -n "${diff_base}" ]]; then
  mapfile -t files < <(git diff --name-only --diff-filter=d "${diff_base}" -- \
    'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc' 'tests/*.cc' \
    'src/**/*.cc' 'tools/**/*.cc' 'bench/**/*.cc' 'examples/**/*.cc' \
    'tests/**/*.cc')
else
  mapfile -t files < <(find src tools bench examples tests -name '*.cc' \
    -not -path 'tests/thread_safety/*' | sort)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "clang-tidy: no files to check"
  exit 0
fi

echo "clang-tidy: checking ${#files[@]} file(s)"
status=0
for f in "${files[@]}"; do
  if ! clang-tidy -p "${build_dir}" --quiet "${extra_args[@]}" "${f}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed (or justified in .clang-tidy)" >&2
fi
exit "${status}"
