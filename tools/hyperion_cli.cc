// hyperion_cli — curator command line for mapping-table files (.hmt, the
// text format of mapping_table.cc).
//
//   hyperion_cli create <file> --name m1 --x "GDB_id:string" --y "MIM_id:string"
//   hyperion_cli show <file>
//   hyperion_cli add <file> <row>          row in table syntax, e.g. "a|b"
//   hyperion_cli ym <file> <x-value>...    print Y_m(x) images
//   hyperion_cli compose <a> <b> [-o out]  cover of a ∘ b (X of a → Y of b)
//   hyperion_cli cover <t1> <t2>... [-o out]
//                                          cover along the whole chain
//   hyperion_cli check <t1> <t2>...        conjunction consistency (+ witness)
//   hyperion_cli infer <target> <t1>...    does the chain imply target?
//   hyperion_cli diff <a> <b>              rows only in a / only in b
//   hyperion_cli co2cc <file> [-o out]     closed-open → closed-closed

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/node.h"
#include "cluster/shard_ring.h"
#include "cluster/shutdown.h"
#include "core/compose.h"
#include "core/consistency.h"
#include "core/curator.h"
#include "core/infer.h"
#include "core/semantics.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "p2p/network.h"
#include "p2p/peer.h"
#include "service/catalogs.h"
#include "service/query_service.h"
#include "storage/csv.h"
#include "workload/bio_network.h"

namespace hyperion {
namespace {

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write '" + path + "'");
  out << content;
  return out.good() ? Status::OK()
                    : Status::IoError("write failed for '" + path + "'");
}

Result<MappingTable> LoadTable(const std::string& path) {
  HYP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  // Honors an optional "semantics:" header (CO/OC tables normalize to CC).
  HYP_ASSIGN_OR_RETURN(MappingTable table, ParseAndNormalize(text));
  if (table.name().empty()) table.set_name(path);
  return table;
}

Status EmitTable(const MappingTable& table,
                 const std::optional<std::string>& out_path) {
  if (out_path) {
    HYP_RETURN_IF_ERROR(WriteFile(*out_path, table.Serialize()));
    std::cout << "wrote " << table.size() << " rows to " << *out_path
              << "\n";
  } else {
    std::cout << table.Serialize();
  }
  return Status::OK();
}

// Strips "-o <path>" out of args; returns the path if present.
std::optional<std::string> TakeOutputFlag(std::vector<std::string>* args) {
  for (size_t i = 0; i + 1 < args->size(); ++i) {
    if ((*args)[i] == "-o") {
      std::string path = (*args)[i + 1];
      args->erase(args->begin() + static_cast<ptrdiff_t>(i),
                  args->begin() + static_cast<ptrdiff_t>(i) + 2);
      return path;
    }
  }
  return std::nullopt;
}

std::optional<std::string> TakeValueFlag(std::vector<std::string>* args,
                                         const std::string& flag) {
  const std::string with_equals = flag + "=";
  for (size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] == flag && i + 1 < args->size()) {
      std::string v = (*args)[i + 1];
      args->erase(args->begin() + static_cast<ptrdiff_t>(i),
                  args->begin() + static_cast<ptrdiff_t>(i) + 2);
      return v;
    }
    if ((*args)[i].rfind(with_equals, 0) == 0) {  // --flag=value form
      std::string v = (*args)[i].substr(with_equals.size());
      args->erase(args->begin() + static_cast<ptrdiff_t>(i));
      return v;
    }
  }
  return std::nullopt;
}

// Composes t1 ∘ t2 ∘ ... left to right.
Result<MappingTable> ChainCover(const std::vector<std::string>& paths) {
  if (paths.size() < 2) {
    return Status::InvalidArgument("need at least two tables to compose");
  }
  HYP_ASSIGN_OR_RETURN(MappingTable acc, LoadTable(paths[0]));
  for (size_t i = 1; i < paths.size(); ++i) {
    HYP_ASSIGN_OR_RETURN(MappingTable next, LoadTable(paths[i]));
    HYP_ASSIGN_OR_RETURN(acc, ComposeConstraints(MappingConstraint(acc),
                                                 MappingConstraint(next)));
  }
  return acc;
}

int CmdCreate(std::vector<std::string> args) {
  auto name = TakeValueFlag(&args, "--name");
  auto x = TakeValueFlag(&args, "--x");
  auto y = TakeValueFlag(&args, "--y");
  if (args.size() != 1 || !x || !y) {
    return Fail("usage: create <file> --x \"A:string,...\" --y \"B:string\" "
                "[--name m1]");
  }
  std::string text;
  if (name) text += "name: " + *name + "\n";
  text += "x: " + *x + "\ny: " + *y + "\n";
  auto parsed = MappingTable::Parse(text);  // validate before writing
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  if (Status s = WriteFile(args[0], text); !s.ok()) {
    return Fail(s.ToString());
  }
  std::cout << "created " << args[0] << "\n";
  return 0;
}

int CmdShow(const std::vector<std::string>& args) {
  if (args.size() != 1) return Fail("usage: show <file>");
  auto table = LoadTable(args[0]);
  if (!table.ok()) return Fail(table.status().ToString());
  std::cout << table.value().ToString();
  MappingTable::Stats stats = table.value().Describe();
  std::cout << "rows: " << stats.rows << " (" << stats.ground_rows
            << " ground, " << stats.variable_rows << " with variables)\n";
  if (stats.distinct_ground_x > 0) {
    std::cout << "distinct X values: " << stats.distinct_ground_x
              << "; fanout avg " << stats.avg_fanout << ", max "
              << stats.max_fanout << "\n";
  }
  if (stats.total_exclusion_values > 0) {
    std::cout << "exclusion-set values: " << stats.total_exclusion_values
              << "\n";
  }
  std::cout << "shape: "
            << MappingTable::MappingShapeToString(table.value().Classify())
            << "\n";
  return 0;
}

int CmdAdd(const std::vector<std::string>& args) {
  if (args.size() != 2) return Fail("usage: add <file> \"cell|cell|...\"");
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status().ToString());
  std::string appended = text.value();
  if (!appended.empty() && appended.back() != '\n') appended += "\n";
  appended += args[1] + "\n";
  auto parsed = MappingTable::Parse(appended);  // validates the new row
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  if (Status s = WriteFile(args[0], appended); !s.ok()) {
    return Fail(s.ToString());
  }
  std::cout << "table now has " << parsed.value().size() << " rows\n";
  return 0;
}

int CmdYm(const std::vector<std::string>& args) {
  if (args.size() < 2) return Fail("usage: ym <file> <x-value>...");
  auto table = LoadTable(args[0]);
  if (!table.ok()) return Fail(table.status().ToString());
  if (table.value().x_arity() != 1) {
    return Fail("ym currently supports single-attribute X sides");
  }
  ValueType type =
      table.value().x_schema().attr(0).domain()->value_type();
  for (size_t i = 1; i < args.size(); ++i) {
    Value x = type == ValueType::kInt
                  ? Value(std::strtoll(args[i].c_str(), nullptr, 10))
                  : Value(args[i]);
    auto image = table.value().YmGround({x});
    std::cout << args[i] << " -> ";
    if (!image.ok()) {
      std::cout << "(infinite image: a variable row applies)\n";
      continue;
    }
    if (image.value().empty()) {
      std::cout << "(no image: value cannot be exchanged)\n";
      continue;
    }
    for (size_t j = 0; j < image.value().size(); ++j) {
      std::cout << (j ? ", " : "") << TupleToString(image.value()[j]);
    }
    std::cout << "\n";
  }
  return 0;
}

int CmdCompose(std::vector<std::string> args) {
  auto out = TakeOutputFlag(&args);
  if (args.size() < 2) {
    return Fail("usage: compose|cover <a> <b> [<c> ...] [-o out]");
  }
  auto cover = ChainCover(args);
  if (!cover.ok()) return Fail(cover.status().ToString());
  if (Status s = EmitTable(cover.value(), out); !s.ok()) {
    return Fail(s.ToString());
  }
  return 0;
}

int CmdCheck(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("usage: check <t1> [<t2> ...]");
  std::vector<MappingConstraint> constraints;
  for (const std::string& path : args) {
    auto table = LoadTable(path);
    if (!table.ok()) return Fail(table.status().ToString());
    constraints.emplace_back(std::move(table).value());
  }
  std::vector<McfPtr> leaves;
  for (const MappingConstraint& c : constraints) {
    leaves.push_back(Mcf::Leaf(c));
  }
  auto formula = Mcf::AndAll(leaves);
  if (!formula.ok()) return Fail(formula.status().ToString());
  auto witness = FindSatisfyingTuple(*formula.value());
  if (!witness.ok()) return Fail(witness.status().ToString());
  if (!witness.value()) {
    std::cout << "INCONSISTENT: no exchanged tuple can satisfy all "
              << constraints.size() << " tables\n";
    return 2;
  }
  std::cout << "consistent; witness over "
            << FormulaSchema(*formula.value()).ToString() << ": "
            << TupleToString(*witness.value()) << "\n";
  return 0;
}

int CmdInfer(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    return Fail("usage: infer <target> <t1> <t2> [...]");
  }
  auto target = LoadTable(args[0]);
  if (!target.ok()) return Fail(target.status().ToString());
  auto cover = ChainCover({args.begin() + 1, args.end()});
  if (!cover.ok()) return Fail(cover.status().ToString());
  auto contained = TableContained(cover.value(), target.value());
  if (!contained.ok()) return Fail(contained.status().ToString());
  if (contained.value()) {
    std::cout << "IMPLIED: the chain's cover (" << cover.value().size()
              << " rows) is contained in the target\n";
    return 0;
  }
  auto fresh = RowsNotContained(cover.value(), target.value());
  if (!fresh.ok()) return Fail(fresh.status().ToString());
  std::cout << "NOT implied: " << fresh.value().size()
            << " derivable mappings are missing from the target, e.g.\n";
  for (size_t i = 0; i < std::min<size_t>(fresh.value().size(), 5); ++i) {
    std::cout << "  " << fresh.value()[i].ToString() << "\n";
  }
  return 2;
}

int CmdDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) return Fail("usage: diff <a> <b>");
  auto a = LoadTable(args[0]);
  if (!a.ok()) return Fail(a.status().ToString());
  auto b = LoadTable(args[1]);
  if (!b.ok()) return Fail(b.status().ToString());
  auto diff = DiffTables(a.value(), b.value());
  if (!diff.ok()) return Fail(diff.status().ToString());
  if (diff.value().equivalent()) {
    std::cout << "tables are equivalent\n";
    return 0;
  }
  std::cout << "only in " << args[0] << " (" << diff.value().only_in_a.size()
            << " rows):\n";
  for (const Mapping& row : diff.value().only_in_a) {
    std::cout << "  " << row.ToString() << "\n";
  }
  std::cout << "only in " << args[1] << " (" << diff.value().only_in_b.size()
            << " rows):\n";
  for (const Mapping& row : diff.value().only_in_b) {
    std::cout << "  " << row.ToString() << "\n";
  }
  return 2;
}

int CmdCoToCc(std::vector<std::string> args) {
  auto out = TakeOutputFlag(&args);
  if (args.size() != 1) return Fail("usage: co2cc <file> [-o out]");
  auto table = LoadTable(args[0]);
  if (!table.ok()) return Fail(table.status().ToString());
  auto cc = TranslateToCc(table.value(), WorldSemantics::kClosedOpen);
  if (!cc.ok()) return Fail(cc.status().ToString());
  if (Status s = EmitTable(cc.value(), out); !s.ok()) {
    return Fail(s.ToString());
  }
  return 0;
}

int CmdImport(std::vector<std::string> args) {
  auto name = TakeValueFlag(&args, "--name");
  auto x_arity = TakeValueFlag(&args, "--x-arity");
  if (args.size() != 2) {
    return Fail("usage: import <out.hmt> <in.csv> [--x-arity N] [--name m]");
  }
  auto csv = ReadFile(args[1]);
  if (!csv.ok()) return Fail(csv.status().ToString());
  size_t arity = x_arity ? std::strtoul(x_arity->c_str(), nullptr, 10) : 1;
  auto table = ImportTableCsv(csv.value(), arity,
                              name.value_or(args[0]));
  if (!table.ok()) return Fail(table.status().ToString());
  if (Status s = WriteFile(args[0], table.value().Serialize()); !s.ok()) {
    return Fail(s.ToString());
  }
  std::cout << "imported " << table.value().size() << " rows into "
            << args[0] << "\n";
  return 0;
}

int CmdExport(std::vector<std::string> args) {
  auto out = TakeOutputFlag(&args);
  if (args.size() != 1) return Fail("usage: export <file.hmt> [-o out.csv]");
  auto table = LoadTable(args[0]);
  if (!table.ok()) return Fail(table.status().ToString());
  auto csv = ExportTableCsv(table.value());
  if (!csv.ok()) return Fail(csv.status().ToString());
  if (out) {
    if (Status s = WriteFile(*out, csv.value()); !s.ok()) {
      return Fail(s.ToString());
    }
    std::cout << "wrote " << *out << "\n";
  } else {
    std::cout << csv.value();
  }
  return 0;
}

// Runs the built-in bio-workload cover session on a simulated network
// with the requested faults injected, so the reliability counters
// (proto.retransmits, proto.session_timeouts, net.drops_injected,
// net.duplicates_suppressed, ...) land in the stats snapshot.
int RunFaultSession(double drop_rate, double dup_rate, uint64_t seed) {
  BioConfig config;
  config.num_entities = 300;
  auto workload = BioWorkload::Generate(config);
  if (!workload.ok()) return Fail(workload.status().ToString());
  auto peers = workload.value().BuildPeers();
  if (!peers.ok()) return Fail(peers.status().ToString());
  SimNetwork net;
  for (auto& p : peers.value()) {
    if (Status s = p->Attach(&net); !s.ok()) return Fail(s.ToString());
  }
  FaultPlan plan;
  plan.seed = seed;
  plan.default_link.drop_rate = drop_rate;
  plan.default_link.dup_rate = dup_rate;
  net.SetFaultPlan(plan);
  PeerNode* hugo = nullptr;
  for (auto& p : peers.value()) {
    if (p->id() == "Hugo") hugo = p.get();
  }
  if (hugo == nullptr) return Fail("bio workload has no Hugo peer");
  auto session = hugo->StartCoverSession(
      {"Hugo", "Locus", "GDB", "SwissProt", "MIM"},
      {Attribute::String("Hugo_id")}, {Attribute::String("MIM_id")});
  if (!session.ok()) return Fail(session.status().ToString());
  if (auto run = net.Run(); !run.ok()) return Fail(run.status().ToString());
  auto result = hugo->GetResult(session.value());
  if (!result.ok()) return Fail(result.status().ToString());
  std::cerr << "fault session (drop " << drop_rate << ", dup " << dup_rate
            << ", seed " << seed << "): "
            << (result.value()->error.ok() ? "completed"
                                           : result.value()->error.ToString())
            << "; " << net.stats().drops_injected << " drops injected, "
            << net.stats().timers_fired << " timers fired\n";
  return 0;
}

int CmdStats(std::vector<std::string> args) {
  bool csv = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--csv") {
      csv = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  auto drop_rate = TakeValueFlag(&args, "--drop-rate");
  auto dup_rate = TakeValueFlag(&args, "--dup-rate");
  auto fault_seed = TakeValueFlag(&args, "--fault-seed");
  if (drop_rate || dup_rate || fault_seed) {
    int rc = RunFaultSession(
        drop_rate ? std::strtod(drop_rate->c_str(), nullptr) : 0.0,
        dup_rate ? std::strtod(dup_rate->c_str(), nullptr) : 0.0,
        fault_seed ? std::strtoull(fault_seed->c_str(), nullptr, 10) : 1);
    if (rc != 0) return rc;
  }
  // Loading tables exercises the parse/describe paths, so their counters
  // land in the snapshot printed below.
  for (const std::string& path : args) {
    auto table = LoadTable(path);
    if (!table.ok()) return Fail(table.status().ToString());
    MappingTable::Stats stats = table.value().Describe();
    obs::MetricRegistry& reg = obs::MetricRegistry::Default();
    obs::LabelSet labels{{"table", table.value().name()}};
    reg.GetGauge("cli.table_rows", labels)
        ->Set(static_cast<int64_t>(stats.rows));
    reg.GetGauge("cli.table_ground_rows", labels)
        ->Set(static_cast<int64_t>(stats.ground_rows));
    reg.GetGauge("cli.table_variable_rows", labels)
        ->Set(static_cast<int64_t>(stats.variable_rows));
  }
  obs::MetricsSnapshot snapshot = obs::MetricRegistry::Default().Snapshot();
  if (csv) {
    std::cout << obs::MetricsToCsv(snapshot);
  } else {
    std::cout << obs::MetricsToJson(snapshot, 2) << "\n";
  }
  return 0;
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Parses "v1,v2,..." against `table`'s schemas into a one-row delta
// table and union-merges it in — the one curator-write primitive the
// cluster REPL's `write` verb and `query --write` share, so a cluster
// write sequence and its single-process replay produce byte-identical
// tables.
Result<MappingTable> CuratorWrite(const MappingTable& table,
                                  const std::string& row_csv) {
  std::vector<std::string> cells = SplitCommas(row_csv);
  const size_t x_arity = table.x_arity();
  const size_t y_arity = table.y_schema().arity();
  if (cells.size() != x_arity + y_arity) {
    return Status::InvalidArgument(
        "write row has " + std::to_string(cells.size()) + " values; table '" +
        table.name() + "' needs " + std::to_string(x_arity + y_arity));
  }
  auto value_of = [](const Schema& schema, size_t i, const std::string& word) {
    return schema.attr(i).domain()->value_type() == ValueType::kInt
               ? Value(std::strtoll(word.c_str(), nullptr, 10))
               : Value(word);
  };
  Tuple x, y;
  for (size_t i = 0; i < x_arity; ++i) {
    x.push_back(value_of(table.x_schema(), i, cells[i]));
  }
  for (size_t i = 0; i < y_arity; ++i) {
    y.push_back(value_of(table.y_schema(), i, cells[x_arity + i]));
  }
  HYP_ASSIGN_OR_RETURN(
      MappingTable delta,
      MappingTable::Create(table.x_schema(), table.y_schema(), table.name()));
  HYP_RETURN_IF_ERROR(delta.AddPair(x, y));
  HYP_ASSIGN_OR_RETURN(MappingTable merged,
                       MergeUnion(table, delta, table.name()));
  return merged;
}

// Builds the QueryRequest for a database path like "Hugo,SwissProt,MIM":
// translate the initiator's ids into the terminal database's ids.
Result<QueryRequest> BioRequest(const std::vector<std::string>& dbs) {
  if (dbs.size() < 2) {
    return Status::InvalidArgument("path needs at least two databases");
  }
  QueryRequest request;
  request.path_peers = dbs;
  request.x_attrs = {Attribute::String(BioWorkload::AttrNameOf(dbs.front()))};
  request.y_attrs = {Attribute::String(BioWorkload::AttrNameOf(dbs.back()))};
  return request;
}

struct ServiceFlags {
  BioConfig config;
  QueryServiceOptions options;
};

// Parses the flags shared by `serve` and `query` out of args.
Result<ServiceFlags> TakeServiceFlags(std::vector<std::string>* args) {
  ServiceFlags flags;
  flags.config.num_entities = 1000;
  if (auto v = TakeValueFlag(args, "--entities")) {
    flags.config.num_entities = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (auto v = TakeValueFlag(args, "--workers")) {
    flags.options.num_workers = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (auto v = TakeValueFlag(args, "--queue")) {
    flags.options.queue_capacity = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (auto v = TakeValueFlag(args, "--drop-rate")) {
    flags.options.fault_plan.default_link.drop_rate =
        std::strtod(v->c_str(), nullptr);
  }
  if (auto v = TakeValueFlag(args, "--dup-rate")) {
    flags.options.fault_plan.default_link.dup_rate =
        std::strtod(v->c_str(), nullptr);
  }
  if (auto v = TakeValueFlag(args, "--fault-seed")) {
    flags.options.fault_plan.seed = std::strtoull(v->c_str(), nullptr, 10);
  }
  if (auto v = TakeValueFlag(args, "--transport")) {
    HYP_ASSIGN_OR_RETURN(flags.options.transport, ParseServiceTransport(*v));
  }
  for (auto it = args->begin(); it != args->end();) {
    if (*it == "--no-cache") {
      flags.options.cache_entries = 0;
      it = args->erase(it);
    } else {
      ++it;
    }
  }
  return flags;
}

// serve — interactive REPL over the bio-catalog service.  One line per
// request; `help` lists the verbs.  Exists so a human can poke the same
// object the soak test hammers.
int CmdServe(std::vector<std::string> args) {
  auto flags = TakeServiceFlags(&args);
  if (!flags.ok()) return Fail(flags.status().ToString());
  if (!args.empty()) return Fail("serve takes only flags; see usage");
  auto catalog = BuildBioCatalog(flags.value().config);
  if (!catalog.ok()) return Fail(catalog.status().ToString());
  QueryService service(catalog.value().store.get(), catalog.value().peers,
                       flags.value().options);
  // SIGINT/SIGTERM interrupt the blocking getline (no SA_RESTART), so a
  // signal drains through ~QueryService instead of killing mid-session.
  cluster::InstallShutdownSignalHandlers();
  std::cerr << "serving the bio network ("
            << flags.value().config.num_entities << " entities, "
            << flags.value().options.num_workers << " workers, "
            << ServiceTransportName(flags.value().options.transport)
            << " transport); try: query Hugo,SwissProt,MIM\n";
  std::string line;
  while (!cluster::ShutdownRequested() && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;
    if (verb == "quit" || verb == "exit") break;
    if (verb == "help") {
      std::cout << "  query <Db1,Db2,...>   run a cover along the path\n"
                   "  paths                 list the Figure 10 paths\n"
                   "  stats                 service + cache counters\n"
                   "  quit\n";
      continue;
    }
    if (verb == "paths") {
      for (const auto& dbs : BioWorkload::HugoMimPaths()) {
        for (size_t i = 0; i < dbs.size(); ++i) {
          std::cout << (i ? "," : "  ") << dbs[i];
        }
        std::cout << "\n";
      }
      continue;
    }
    if (verb == "stats") {
      QueryService::Stats s = service.stats();
      CoverCache::Stats c = service.cache_stats();
      std::cout << "submitted " << s.submitted << ", executed " << s.executed
                << ", cache hits " << s.cache_hits << ", coalesced "
                << s.coalesced << ", rejects " << s.admission_rejects
                << ", failed " << s.failed << "; cache invalidations "
                << c.invalidations << ", evictions " << c.evictions << "\n";
      continue;
    }
    if (verb == "query") {
      std::string path_csv;
      in >> path_csv;
      auto request = BioRequest(SplitCommas(path_csv));
      if (!request.ok()) {
        std::cout << "error: " << request.status() << "\n";
        continue;
      }
      QueryResponsePtr response = service.Execute(std::move(request).value());
      if (!response->status.ok()) {
        std::cout << "error: " << response->status << "\n";
        continue;
      }
      std::cout << response->cover->size() << " cover rows in "
                << response->latency_us << " us"
                << (response->from_cache ? " (cached)" : "") << "\n";
      continue;
    }
    std::cout << "unknown verb '" << verb << "'; try help\n";
  }
  if (cluster::ShutdownRequested()) {
    std::cerr << "shutdown signal received; draining\n";
  }
  return 0;
}

// query — drives one request repeatedly from many client threads; the
// CI soak runs this at high concurrency against the Release build.
int CmdQuery(std::vector<std::string> args) {
  auto flags = TakeServiceFlags(&args);
  if (!flags.ok()) return Fail(flags.status().ToString());
  size_t repeat = 1, threads = 1;
  if (auto v = TakeValueFlag(&args, "--repeat")) {
    repeat = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (auto v = TakeValueFlag(&args, "--threads")) {
    threads = std::strtoul(v->c_str(), nullptr, 10);
  }
  std::vector<std::string> dbs = {"Hugo", "SwissProt", "MIM"};
  if (auto v = TakeValueFlag(&args, "--path")) dbs = SplitCommas(*v);
  auto dump_path = TakeValueFlag(&args, "--dump");
  std::vector<std::string> writes;  // repeatable --write "table:v1,v2,..."
  while (auto v = TakeValueFlag(&args, "--write")) writes.push_back(*v);
  if (!args.empty()) return Fail("query takes only flags; see usage");
  if (repeat == 0 || threads == 0) {
    return Fail("--repeat and --threads must be positive");
  }
  auto catalog = BuildBioCatalog(flags.value().config);
  if (!catalog.ok()) return Fail(catalog.status().ToString());
  // Replay curator writes into the local store, in order — the
  // single-process reference for the cluster write-path drill: the same
  // write sequence applied through ClusterTableSink must leave the
  // cluster serving byte-identical tables (and covers) to these.
  for (const std::string& spec : writes) {
    size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
      return Fail("--write needs <table>:<v1,v2,...>");
    }
    std::string table_name = spec.substr(0, colon);
    auto current = catalog.value().store->Get(table_name);
    if (!current.ok()) return Fail(current.status().ToString());
    auto merged = CuratorWrite(*current.value(), spec.substr(colon + 1));
    if (!merged.ok()) return Fail(merged.status().ToString());
    if (Status s =
            catalog.value().store->PutOrReplace(std::move(merged).value());
        !s.ok()) {
      return Fail(s.ToString());
    }
  }
  QueryService service(catalog.value().store.get(), catalog.value().peers,
                       flags.value().options);
  auto request = BioRequest(dbs);
  if (!request.ok()) return Fail(request.status().ToString());

  std::atomic<uint64_t> ok{0}, failed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < repeat; ++i) {
        QueryRequest r = request.value();
        QueryResponsePtr response = service.Execute(std::move(r));
        (response->status.ok() ? ok : failed)
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  QueryService::Stats s = service.stats();
  std::cout << ok.load() << " ok, " << failed.load() << " failed in "
            << wall_s << " s ("
            << (wall_s > 0 ? static_cast<double>(repeat * threads) / wall_s
                           : 0.0)
            << " qps); " << s.executed << " sessions executed, "
            << s.cache_hits << " cache hits, " << s.coalesced
            << " coalesced, " << s.admission_rejects << " rejects\n";
  // Loud faults are expected under injected faults or tiny queues, but a
  // fault-free run that fails anything should fail the soak.
  bool faults_injected =
      flags.value().options.fault_plan.default_link.drop_rate > 0 ||
      flags.value().options.fault_plan.default_link.dup_rate > 0;
  if (failed.load() > 0 && !faults_injected) {
    return Fail("fault-free run produced failed responses");
  }
  if (dump_path) {
    // One clean execution whose cover goes to a file — the byte-level
    // reference the cluster conformance check diffs against.
    QueryRequest r = request.value();
    QueryResponsePtr response = service.Execute(std::move(r));
    if (!response->status.ok()) return Fail(response->status.ToString());
    Status ws = WriteFile(*dump_path, response->cover->Serialize());
    if (!ws.ok()) return Fail(ws.ToString());
    std::cerr << "cover (" << response->cover->size() << " rows) written to "
              << *dump_path << "\n";
  }
  return 0;
}

// cluster plan|check — placement inspection for a cluster config.  Every
// process computes placement independently from the config file plus the
// shard ring, so `plan` is how an operator sees (and a script asserts)
// what the cluster will agree on, without starting any node.
int CmdCluster(std::vector<std::string> args) {
  if (args.empty()) return Fail("cluster needs a subcommand: plan or check");
  std::string sub = args.front();
  args.erase(args.begin());
  auto config_path = TakeValueFlag(&args, "--config");
  if (!config_path) return Fail("cluster " + sub + " requires --config");
  if (!args.empty()) return Fail("cluster takes only flags; see usage");
  auto config = cluster::ClusterConfig::FromFile(*config_path);
  if (!config.ok()) return Fail(config.status().ToString());
  auto ring = cluster::ShardRing::Build(config.value().StorageNodeIds(),
                                        config.value().shard_count,
                                        config.value().vnodes,
                                        config.value().replication);
  if (!ring.ok()) return Fail(ring.status().ToString());
  if (sub == "check") {
    // FromFile already validated; reaching here means the config and the
    // ring both build.
    std::cout << "ok: " << config.value().nodes.size() << " nodes, "
              << config.value().shard_count << " shards, replication "
              << config.value().replication << ", "
              << ring.value().storage_nodes().size() << " storage nodes\n";
    return 0;
  }
  if (sub != "plan") return Fail("unknown cluster subcommand '" + sub + "'");
  std::cout << "shards " << config.value().shard_count << ", vnodes "
            << config.value().vnodes << ", replication "
            << config.value().replication << "\n";
  // Full replica set per shard, primary first — scripts take the
  // primary from column 4, replicas from the columns after it.
  for (uint64_t s = 0; s < config.value().shard_count; ++s) {
    std::cout << "shard " << s << " ->";
    for (const std::string& owner : ring.value().OwnersForShard(s)) {
      std::cout << " " << owner;
    }
    std::cout << "\n";
  }
  for (const cluster::NodeSpec& node : config.value().nodes) {
    std::cout << node.id << " (" << cluster::RoleName(node.role) << ")";
    if (node.role == cluster::NodeRole::kStorage) {
      std::cout << " primary of";
      for (uint64_t s : ring.value().PrimaryShardsOf(node.id)) {
        std::cout << " " << s;
      }
      std::cout << "; replicates";
      for (uint64_t s : ring.value().ShardsOwnedBy(node.id)) {
        std::cout << " " << s;
      }
    }
    std::cout << "\n";
  }
  return 0;
}

// node — one process of a cluster (tools/run_cluster.sh starts three).
// Every node deterministically regenerates the bio catalog; storage
// nodes serve their shard slice of it, the coordinator keeps only the
// peer specs and reads tables through the cluster source, so its covers
// must be byte-identical to a single-process run over the same catalog.
int CmdNode(std::vector<std::string> args) {
  auto config_path = TakeValueFlag(&args, "--config");
  auto id = TakeValueFlag(&args, "--id");
  auto entities = TakeValueFlag(&args, "--entities");
  auto workers = TakeValueFlag(&args, "--workers");
  auto port_file = TakeValueFlag(&args, "--port-file");
  auto log_dir = TakeValueFlag(&args, "--log-dir");
  bool print_port = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--print-port") {
      print_port = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!config_path || !id) {
    return Fail("node requires --config <file> and --id <node>");
  }
  if (!args.empty()) return Fail("node takes only flags; see usage");

  auto config = cluster::ClusterConfig::FromFile(*config_path);
  if (!config.ok()) return Fail(config.status().ToString());
  BioConfig bio;
  bio.num_entities =
      entities ? std::strtoul(entities->c_str(), nullptr, 10) : 1000;
  auto catalog = BuildBioCatalog(bio);
  if (!catalog.ok()) return Fail(catalog.status().ToString());
  auto node = cluster::ClusterNode::Create(
      std::move(config).value(), *id, std::move(*catalog.value().store));
  if (!node.ok()) return Fail(node.status().ToString());
  if (log_dir) node.value()->SetWriteLogDir(*log_dir);

  cluster::InstallShutdownSignalHandlers();
  if (Status s = node.value()->Bind(); !s.ok()) return Fail(s.ToString());
  if (port_file) {
    if (Status s = node.value()->WritePortFile(*port_file); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  auto port = node.value()->ListenPort();
  if (!port.ok()) return Fail(port.status().ToString());
  if (print_port) std::cout << port.value() << std::endl;
  if (Status s = node.value()->Start(); !s.ok()) return Fail(s.ToString());

  const cluster::NodeSpec& self = node.value()->self();
  std::cerr << "node '" << self.id << "' ("
            << cluster::RoleName(self.role) << ") listening on "
            << self.host << ":" << port.value();
  if (self.role == cluster::NodeRole::kStorage) {
    std::cerr << "; owns shards";
    for (uint64_t s : node.value()->owned_shards()) std::cerr << " " << s;
  }
  std::cerr << "\n";

  if (self.role == cluster::NodeRole::kStorage) {
    // Storage nodes are passive: the event-loop thread answers fetches
    // and heartbeats; this thread just waits for the shutdown signal.
    while (!cluster::ShutdownRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::cerr << "node '" << self.id << "' shutting down\n";
    node.value()->Stop();
    return 0;
  }

  // Coordinator: a QueryService whose tables come through the cluster
  // source — same REPL shape as `serve`, plus cluster verbs.
  QueryServiceOptions options;
  if (workers) {
    options.num_workers = std::strtoul(workers->c_str(), nullptr, 10);
  }
  QueryService service(node.value()->table_source(), catalog.value().peers,
                       options);
  std::string line;
  while (!cluster::ShutdownRequested() && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;
    if (verb == "quit" || verb == "exit") break;
    if (verb == "help") {
      std::cout << "  query <Db1,Db2,...>      run a cover along the path\n"
                   "  dump <out> <Db1,...>     run and write the cover file\n"
                   "  write <table> <v1,v2,..> replicate a curator write\n"
                   "  versions                 per-node shard write versions\n"
                   "  join <id> <host:port>    add a storage node (rebalance)\n"
                   "  decommission <id>        retire a storage node\n"
                   "  epoch                    committed/pending ring epoch\n"
                   "  members                  membership states\n"
                   "  waitalive [timeout_ms]   block until all peers alive\n"
                   "  shards                   per-shard fetch accounting\n"
                   "  counters [prefix]        metric counters (optional prefix)\n"
                   "  stats                    service counters\n"
                   "  evict                    drop the fetched-table cache\n"
                   "  quit\n";
      continue;
    }
    if (verb == "write") {
      std::string table_name, row_csv;
      in >> table_name >> row_csv;
      if (table_name.empty() || row_csv.empty()) {
        std::cout << "error: write needs <table> <v1,v2,...>\n";
        continue;
      }
      auto fetched = node.value()->table_source()->Fetch(table_name);
      if (!fetched.ok()) {
        std::cout << "error: " << fetched.status() << "\n";
        continue;
      }
      auto merged = CuratorWrite(*fetched.value().table, row_csv);
      if (!merged.ok()) {
        std::cout << "error: " << merged.status() << "\n";
        continue;
      }
      auto report = node.value()->table_sink()->Apply(
          merged.value(), fetched.value().version + 1);
      if (!report.ok()) {
        std::cout << "error: " << report.status() << "\n";
        continue;
      }
      // The committed write made the cached assembly stale; the next
      // fetch re-pulls at the new version, which invalidates covers
      // keyed on the old one.
      node.value()->table_source()->EvictTable(table_name);
      std::cout << "write ok " << table_name << " seq "
                << report.value().sequence << " acks "
                << report.value().acks;
      if (!report.value().lagging.empty()) {
        std::cout << " lagging";
        for (const std::string& replica : report.value().lagging) {
          std::cout << " " << replica;
        }
      }
      std::cout << "\n";
      continue;
    }
    if (verb == "join" || verb == "decommission") {
      std::string target_id, target_addr;
      in >> target_id;
      if (verb == "join") in >> target_addr;
      if (target_id.empty() || (verb == "join" && target_addr.empty())) {
        std::cout << "error: " << verb << " needs <id>"
                  << (verb == "join" ? " <host:port>" : "") << "\n";
        continue;
      }
      auto epoch = verb == "join"
                       ? node.value()->StartJoin(target_id, target_addr)
                       : node.value()->StartDecommission(target_id);
      if (!epoch.ok()) {
        std::cout << "error: " << epoch.status() << "\n";
        continue;
      }
      std::cout << verb << " of '" << target_id << "' started: epoch "
                << epoch.value() << " pending\n";
      continue;
    }
    if (verb == "epoch") {
      // `epoch N (stable): n1 n2 ...` once a transition commits — the
      // rebalance drill polls for exactly that line.
      uint64_t pending = node.value()->pending_epoch();
      std::cout << "epoch " << node.value()->ring_epoch()
                << (pending != 0
                        ? " (transition to " + std::to_string(pending) +
                              " in flight)"
                        : " (stable)")
                << ":";
      for (const std::string& sid : node.value()->ring()->storage_nodes()) {
        std::cout << " " << sid;
      }
      std::cout << "\n";
      continue;
    }
    if (verb == "versions") {
      // One line per storage node: how many of its owned shards it has
      // advertised versions for, and the minimum — the drill polls for
      // "min v<seq>" to detect anti-entropy convergence.  Iterates the
      // *live* committed ring, not the boot config, so joined nodes show
      // up and decommissioned ones drop out.
      auto peers = node.value()->PeerShardVersions();
      for (const std::string& sid : node.value()->ring()->storage_nodes()) {
        std::vector<uint64_t> owned = node.value()->ring()->ShardsOwnedBy(sid);
        auto it = peers.find(sid);
        uint64_t min_version = 0;
        size_t reported = 0;
        bool first = true;
        for (uint64_t s : owned) {
          uint64_t v = 0;
          if (it != peers.end()) {
            auto f = it->second.find(s);
            if (f != it->second.end()) {
              v = f->second;
              ++reported;
            }
          }
          if (first || v < min_version) min_version = v;
          first = false;
        }
        std::cout << sid << " shards " << reported << "/" << owned.size()
                  << " min v" << min_version << "\n";
      }
      continue;
    }
    if (verb == "members") {
      for (const cluster::MemberInfo& m :
           node.value()->membership().Snapshot()) {
        std::cout << m.node << " " << cluster::MemberStateName(m.state)
                  << " (" << m.beats << " beats)\n";
      }
      continue;
    }
    if (verb == "waitalive") {
      int64_t timeout_ms = 10'000;
      in >> timeout_ms;
      bool alive = node.value()->WaitAllAlive(timeout_ms * 1000);
      std::cout << (alive ? "all alive\n" : "timeout: not all alive\n");
      continue;
    }
    if (verb == "shards") {
      auto stats = node.value()->table_source()->ShardStats();
      if (stats.empty()) std::cout << "no shard fetches yet\n";
      for (const auto& st : stats) {
        std::cout << st.table << " shard " << st.shard << " @ " << st.owner
                  << ": " << st.rows << " rows\n";
      }
      continue;
    }
    if (verb == "stats") {
      QueryService::Stats s = service.stats();
      std::cout << "submitted " << s.submitted << ", executed " << s.executed
                << ", cache hits " << s.cache_hits << ", failed " << s.failed
                << "\n";
      continue;
    }
    if (verb == "evict") {
      node.value()->table_source()->Evict();
      std::cout << "table cache dropped\n";
      continue;
    }
    if (verb == "counters") {
      // `counters cluster.rebalance` — the rebalance drill polls these
      // to assert rows actually shipped during a handoff.
      std::string prefix;
      in >> prefix;
      obs::MetricsSnapshot snap = obs::MetricRegistry::Default().Snapshot();
      size_t shown = 0;
      for (const obs::CounterSnapshot& c : snap.counters) {
        if (!prefix.empty() && c.name.rfind(prefix, 0) != 0) continue;
        std::cout << c.name << " " << c.value << "\n";
        ++shown;
      }
      std::cout << "end counters (" << shown << ")\n";
      continue;
    }
    if (verb == "query" || verb == "dump") {
      std::string out_path;
      if (verb == "dump") {
        in >> out_path;
        if (out_path.empty()) {
          std::cout << "error: dump needs <out> <Db1,Db2,...>\n";
          continue;
        }
      }
      std::string path_csv;
      in >> path_csv;
      auto request = BioRequest(SplitCommas(path_csv));
      if (!request.ok()) {
        std::cout << "error: " << request.status() << "\n";
        continue;
      }
      QueryResponsePtr response = service.Execute(std::move(request).value());
      if (!response->status.ok()) {
        std::cout << "error: " << response->status << "\n";
        continue;
      }
      if (verb == "dump") {
        Status ws = WriteFile(out_path, response->cover->Serialize());
        if (!ws.ok()) {
          std::cout << "error: " << ws << "\n";
          continue;
        }
        std::cout << response->cover->size() << " cover rows written to "
                  << out_path << "\n";
      } else {
        std::cout << response->cover->size() << " cover rows in "
                  << response->latency_us << " us"
                  << (response->from_cache ? " (cached)" : "") << "\n";
      }
      continue;
    }
    std::cout << "unknown verb '" << verb << "'; try help\n";
  }
  std::cerr << "node '" << self.id << "' shutting down\n";
  node.value()->Stop();
  return 0;
}

int Usage() {
  std::cerr
      << "hyperion_cli — mapping-table curation (SIGMOD'03 reproduction)\n"
         "commands:\n"
         "  create <file> --x \"A:string\" --y \"B:string\" [--name m]\n"
         "  show <file>\n"
         "  add <file> \"cell|cell\"\n"
         "  ym <file> <x-value>...\n"
         "  compose|cover <a> <b> [...] [-o out]\n"
         "  check <t1> [...]\n"
         "  infer <target> <t1> <t2> [...]\n"
         "  diff <a> <b>\n"
         "  co2cc <file> [-o out]\n"
         "  import <out.hmt> <in.csv> [--x-arity N] [--name m]\n"
         "  export <file.hmt> [-o out.csv]\n"
         "  stats [--csv] [<file> ...]\n"
         "        [--drop-rate P] [--dup-rate P] [--fault-seed N]\n"
         "        with a fault flag, first runs a simulated cover session\n"
         "        under those faults so retransmit/timeout counters show\n"
         "  serve [service flags]\n"
         "        REPL over a QueryService on the bio network\n"
         "        (query Db1,Db2,... / paths / stats / quit)\n"
         "  query [--repeat N] [--threads K] [--path Db1,Db2,...]\n"
         "        [--dump <file>] [--write t:v1,v2,... ...] [service flags]\n"
         "        hammer one request from K client threads (CI soak);\n"
         "        --dump writes one clean cover for conformance diffs;\n"
         "        --write (repeatable, in order) union-merges one row\n"
         "        into a table first — the single-process reference for\n"
         "        the cluster write-path drill\n"
         "  node --config <file> --id <name> [--entities E] [--workers W]\n"
         "        [--port-file <path>] [--print-port] [--log-dir <dir>]\n"
         "        run one cluster process: storage nodes serve shard\n"
         "        slices (--log-dir persists applied writes for restart\n"
         "        recovery); the coordinator is a REPL (query/dump/write/\n"
         "        versions/members/waitalive/shards/stats/evict/quit)\n"
         "  cluster plan|check --config <file>\n"
         "        print (plan) or validate (check) the shard placement\n"
         "  service flags: --entities E --workers W --queue Q --no-cache\n"
         "        --drop-rate P --dup-rate P --fault-seed N\n"
         "        --transport sim|threaded|tcp  (tcp = sessions on real\n"
         "        loopback sockets; flags also accept --flag=value form)\n"
         "global flags:\n"
         "  --metrics-json=<path>   dump the metric registry after the "
         "command\n";
  return 1;
}

int Dispatch(const std::string& cmd, std::vector<std::string> args) {
  if (cmd == "create") return CmdCreate(std::move(args));
  if (cmd == "show") return CmdShow(args);
  if (cmd == "add") return CmdAdd(args);
  if (cmd == "ym") return CmdYm(args);
  if (cmd == "compose" || cmd == "cover") return CmdCompose(std::move(args));
  if (cmd == "check") return CmdCheck(args);
  if (cmd == "infer") return CmdInfer(args);
  if (cmd == "diff") return CmdDiff(args);
  if (cmd == "co2cc") return CmdCoToCc(std::move(args));
  if (cmd == "import") return CmdImport(std::move(args));
  if (cmd == "export") return CmdExport(std::move(args));
  if (cmd == "stats") return CmdStats(std::move(args));
  if (cmd == "serve") return CmdServe(std::move(args));
  if (cmd == "query") return CmdQuery(std::move(args));
  if (cmd == "node") return CmdNode(std::move(args));
  if (cmd == "cluster") return CmdCluster(std::move(args));
  return Usage();
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  // --metrics-json=<path> works with every command: after it runs, the
  // default registry is serialized so scripts can scrape what happened.
  std::optional<std::string> metrics_path;
  constexpr std::string_view kFlag = "--metrics-json=";
  for (auto it = args.begin(); it != args.end();) {
    if (it->rfind(kFlag, 0) == 0) {
      metrics_path = it->substr(kFlag.size());
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  int rc = Dispatch(cmd, std::move(args));
  if (metrics_path) {
    Status s = obs::WriteTextFile(
        *metrics_path,
        obs::MetricsToJson(obs::MetricRegistry::Default().Snapshot(), 2) +
            "\n");
    if (!s.ok()) return Fail(s.ToString());
    std::cerr << "metrics written to " << *metrics_path << "\n";
  }
  return rc;
}

}  // namespace
}  // namespace hyperion

int main(int argc, char** argv) { return hyperion::Run(argc, argv); }
