#!/usr/bin/env bash
# Launches a multi-process hyperion cluster on loopback TCP, runs
# bio-catalog queries through the coordinator REPL, and proves the
# distributed cover is byte-identical to a single-process run over the
# same catalog.
#
#   tools/run_cluster.sh <path-to-hyperion_cli> [--kill-one] [--failover] [--write-path]
#
# Startup handshake: storage nodes bind ephemeral ports (port 0 in the
# seed config) and publish them via --port-file; once all files exist
# the script rewrites a resolved config and only then starts the
# coordinator — no listen-before-connect race, no fixed ports to
# collide on in CI.  A storage node that dies before publishing its
# port fails the script immediately, by name, with its log tail — a
# missing port file never hangs the drill until timeout.
#
# --kill-one (replication=1, two storage nodes) SIGKILLs the storage
# node owning shard 0 mid-session and asserts the next query fails
# *loudly*, naming that node — an unreplicated cluster must never
# return a silently partial cover.
#
# --failover (replication=2, three storage nodes) is the chaos drill:
# SIGKILL the *primary* owner of shard 0 mid-workload and assert the
# cluster keeps answering — zero failed queries, covers byte-identical
# to the single-process reference, the failover invisible except in the
# logs.
#
# --write-path (replication=2, three storage nodes, write_quorum 1,
# per-node write logs) is the durability drill: replicate a curator
# write, kill -9 one replica, replicate a second write while it is
# down, restart it, wait for anti-entropy to repair it to the latest
# write sequence, and assert the final cluster cover is byte-identical
# to a single-process run that applied the same write sequence — with
# zero failed queries and zero failed writes along the way.
set -euo pipefail

CLI=${1:?usage: run_cluster.sh <path-to-hyperion_cli> [--kill-one] [--failover] [--write-path]}
shift || true
KILL_ONE=0
FAILOVER=0
WRITE_PATH=0
for arg in "$@"; do
  [[ "$arg" == "--kill-one" ]] && KILL_ONE=1
  [[ "$arg" == "--failover" ]] && FAILOVER=1
  [[ "$arg" == "--write-path" ]] && WRITE_PATH=1
done
if (( KILL_ONE + FAILOVER + WRITE_PATH > 1 )); then
  echo "run_cluster: --kill-one, --failover and --write-path are mutually exclusive" >&2
  exit 2
fi

ENTITIES=${ENTITIES:-200}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hyperion_cluster.XXXXXX")
# Every spawned node pid lands here the moment it exists, so the EXIT
# trap can kill -9 the whole fleet on ANY early exit (a fail(), a
# set -e abort, a signal) — no orphaned storage processes outliving a
# broken drill, no port files leaking into the next CI step.
NODE_PIDS=()
cleanup() {
  if ((${#NODE_PIDS[@]} > 0)); then
    kill -9 "${NODE_PIDS[@]}" 2>/dev/null || true
  fi
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "run_cluster: FAIL: $*" >&2
  for log in "$WORK"/*.log "$WORK"/coord.out; do
    [[ -f "$log" ]] && { echo "--- $log ---" >&2; tail -20 "$log" >&2; }
  done
  exit 1
}

# Waits (up to $3 seconds, default 20) for $2 to appear in file $1.
# When $4 names a node and $5 its pid, a dead process fails fast with a
# named diagnostic instead of burning the whole budget.
await() {
  local file=$1 pattern=$2 budget=${3:-20} node=${4:-} pid=${5:-} i
  for ((i = 0; i < budget * 10; ++i)); do
    grep -q "$pattern" "$file" 2>/dev/null && return 0
    if [[ -n "$pid" ]] && ! kill -0 "$pid" 2>/dev/null; then
      fail "node '$node' (pid $pid) died before '$pattern' appeared in $file"
    fi
    sleep 0.1
  done
  fail "timed out waiting for '$pattern' in $file"
}

# --- 1. storage nodes on ephemeral ports --------------------------------
if [[ "$FAILOVER" == 1 || "$WRITE_PATH" == 1 ]]; then
  REPLICATION=2
  STORES=(store1 store2 store3)
else
  REPLICATION=1
  STORES=(store1 store2)
fi

conf_body() {
  cat <<EOF
shards 2
replication $REPLICATION
heartbeat_ms 100
suspect_ms 500
down_ms 1500
fetch_timeout_ms 5000
replica_timeout_ms 400
fetch_attempts 2
fetch_backoff_ms 50
EOF
  if [[ "$WRITE_PATH" == 1 ]]; then
    # quorum 1: the write issued while one replica is SIGKILLed (but not
    # yet marked down) must commit off the surviving replica alone;
    # anti-entropy owes the dead one its catch-up.
    cat <<EOF
write_quorum 1
write_timeout_ms 5000
write_attempts 3
write_backoff_ms 50
repair_interval_ms 200
EOF
  fi
  echo "node coord coordinator 127.0.0.1 0"
}

# Storage nodes in a write-path drill persist applied writes, so a
# restarted replica resumes from its pre-crash write log.
store_flags() {
  local node=$1
  if [[ "$WRITE_PATH" == 1 ]]; then
    echo "--log-dir $WORK/$node.wal"
  fi
}

{
  conf_body
  for node in "${STORES[@]}"; do
    echo "node $node storage 127.0.0.1 0"
  done
} > "$WORK/seed.conf"

declare -A STORE_PID
for node in "${STORES[@]}"; do
  # shellcheck disable=SC2046
  "$CLI" node --config "$WORK/seed.conf" --id "$node" \
    --entities "$ENTITIES" --port-file "$WORK/$node.port" \
    $(store_flags "$node") \
    > "$WORK/$node.log" 2>&1 &
  STORE_PID[$node]=$!
  NODE_PIDS+=($!)
done
for node in "${STORES[@]}"; do
  await "$WORK/$node.port" "[0-9]" 20 "$node" "${STORE_PID[$node]}"
done

# --- 2. resolved config + placement -------------------------------------
{
  conf_body
  for node in "${STORES[@]}"; do
    echo "node $node storage 127.0.0.1 $(cat "$WORK/$node.port")"
  done
} > "$WORK/resolved.conf"

"$CLI" cluster plan --config "$WORK/resolved.conf"
# Column 4 of "shard 0 -> <primary> [replicas...]" is the primary owner.
VICTIM=$("$CLI" cluster plan --config "$WORK/resolved.conf" \
  | awk '$1 == "shard" && $2 == "0" { print $4 }')
[[ -n "$VICTIM" ]] || fail "could not determine the primary owner of shard 0"

# --- 3. coordinator REPL over a fifo ------------------------------------
mkfifo "$WORK/repl"
"$CLI" node --config "$WORK/resolved.conf" --id coord \
  --entities "$ENTITIES" --port-file "$WORK/coord.port" < "$WORK/repl" \
  > "$WORK/coord.out" 2> "$WORK/coord.log" &
COORD=$!
NODE_PIDS+=($!)
exec 3> "$WORK/repl"

echo "waitalive 10000" >&3
await "$WORK/coord.out" "all alive" 20 coord "$COORD"

echo "query Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "cover rows in" 20 coord "$COORD"
grep -q "^error" "$WORK/coord.out" && fail "healthy-cluster query errored"

echo "dump $WORK/cluster_cover.hmt Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "written to" 20 coord "$COORD"

# --- 4. conformance: cluster cover == single-process cover --------------
"$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
  --repeat 1 --dump "$WORK/sim_cover.hmt" > /dev/null 2>&1
cmp "$WORK/sim_cover.hmt" "$WORK/cluster_cover.hmt" \
  || fail "cluster cover differs from single-process cover"
echo "run_cluster: covers byte-identical ($(wc -c < "$WORK/sim_cover.hmt") bytes)"

# --- 5. optional: kill a storage node, demand a loud failure ------------
if [[ "$KILL_ONE" == 1 ]]; then
  echo "run_cluster: killing $VICTIM (owner of shard 0)"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Evict fetched tables and use a fresh path so neither cache layer can
  # answer without touching the dead node.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  echo "query Hugo,GDB,MIM" >&3
  await "$WORK/coord.out" "unreachable" 30 coord "$COORD"
  grep "storage node '$VICTIM' unreachable" "$WORK/coord.out" > /dev/null \
    || fail "failure did not name the dead node $VICTIM"
  echo "run_cluster: dead node loudly attributed: $(grep -o "storage node '$VICTIM' unreachable[^\"]*" "$WORK/coord.out" | head -1)"
fi

# --- 6. optional: replication=2 chaos drill — kill -9 the primary, ------
# ---    demand zero failed queries and byte-identical covers ------------
if [[ "$FAILOVER" == 1 ]]; then
  echo "run_cluster: kill -9 $VICTIM (primary of shard 0) mid-workload"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Drop the assembled-table cache and run only paths the service has
  # never answered (its cover cache is per-path), so every query below
  # has to go back on the wire and fail over from the dead primary to a
  # live replica.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  DRILL_PATHS=(
    Hugo,GDB,MIM
    Hugo,Locus,MIM
    Hugo,GDB,SwissProt,MIM
    Hugo,Locus,GDB,MIM
    Hugo,Locus,Unigene,SwissProt,MIM
  )
  for p in "${DRILL_PATHS[@]}"; do
    echo "query $p" >&3
  done
  # The REPL is sequential, so once the dump below has completed every
  # drill query above has answered too.
  echo "dump $WORK/failover_cover.hmt Hugo,Locus,GDB,SwissProt,MIM" >&3
  await "$WORK/coord.out" "failover_cover.hmt" 40 coord "$COORD"
  grep -q "^error" "$WORK/coord.out" \
    && fail "query failed during failover drill: $(grep -m1 '^error' "$WORK/coord.out")"
  ANSWERED=$(grep -c "cover rows in" "$WORK/coord.out")
  [[ "$ANSWERED" -ge 6 ]] \
    || fail "expected >= 6 answered queries, got $ANSWERED"
  "$CLI" query --entities "$ENTITIES" --path Hugo,Locus,GDB,SwissProt,MIM \
    --repeat 1 --dump "$WORK/sim_failover.hmt" > /dev/null 2>&1
  cmp "$WORK/sim_failover.hmt" "$WORK/failover_cover.hmt" \
    || fail "post-failover cover differs from single-process cover"
  echo "run_cluster: survived kill -9 of $VICTIM: $ANSWERED queries answered, 0 failed, covers byte-identical"
fi

# --- 7. optional: distributed write path + anti-entropy repair drill ----
if [[ "$WRITE_PATH" == 1 ]]; then
  # The query path Hugo,SwissProt,MIM composes m5 (Hugo->SwissProt) with
  # m11 (SwissProt->MIM); writing a linking row into each makes the new
  # pair visible in the cover, so the final byte-compare proves the
  # writes actually replicated.
  echo "run_cluster: write 1 (all replicas alive)"
  echo "write m5 drillhugo,drillswiss" >&3
  await "$WORK/coord.out" "write ok m5 seq 1" 20 coord "$COORD"

  echo "run_cluster: kill -9 $VICTIM (primary of shard 0), then write 2"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  echo "write m11 drillswiss,drillmim" >&3
  await "$WORK/coord.out" "write ok m11 seq 2" 30 coord "$COORD"

  # Restart the victim: same node id, fresh ephemeral port (its old one
  # may linger in TIME_WAIT), same write log.  Its config must carry the
  # coordinator's RESOLVED port (the seed says 0): the survivors only
  # know the victim's dead old address, so the victim has to dial out
  # first — peers then learn its new address from those heartbeats, and
  # anti-entropy sees its shard versions behind and feeds it the writes
  # it slept through.
  {
    conf_body
    for node in "${STORES[@]}"; do
      if [[ "$node" == "$VICTIM" ]]; then
        echo "node $node storage 127.0.0.1 0"
      else
        echo "node $node storage 127.0.0.1 $(cat "$WORK/$node.port")"
      fi
    done
  } | sed "s/node coord coordinator 127.0.0.1 0/node coord coordinator 127.0.0.1 $(cat "$WORK/coord.port")/" \
    > "$WORK/restart.conf"
  # shellcheck disable=SC2046
  "$CLI" node --config "$WORK/restart.conf" --id "$VICTIM" \
    --entities "$ENTITIES" --port-file "$WORK/$VICTIM.port2" \
    $(store_flags "$VICTIM") \
    > "$WORK/$VICTIM.restart.log" 2>&1 &
  STORE_PID[$VICTIM]=$!
  NODE_PIDS+=($!)
  await "$WORK/$VICTIM.port2" "[0-9]" 20 "$VICTIM" "${STORE_PID[$VICTIM]}"

  echo "run_cluster: waiting for anti-entropy to repair $VICTIM to seq 2"
  CONVERGED=0
  for ((i = 0; i < 150; ++i)); do
    echo "versions" >&3
    sleep 0.2
    if grep -q "^$VICTIM shards [0-9]*/[0-9]* min v2" "$WORK/coord.out"; then
      CONVERGED=1
      break
    fi
    kill -0 "${STORE_PID[$VICTIM]}" 2>/dev/null \
      || fail "restarted node $VICTIM died during repair"
  done
  [[ "$CONVERGED" == 1 ]] \
    || fail "$VICTIM never converged to write seq 2 (see 'versions' output)"

  # Final conformance: the cluster cover after (write, crash, write,
  # repair) must equal a single-process run that just applied both
  # writes — byte-identical, zero failed queries, zero failed writes.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  echo "dump $WORK/write_cover.hmt Hugo,SwissProt,MIM" >&3
  await "$WORK/coord.out" "write_cover.hmt" 30 coord "$COORD"
  grep -q "^error" "$WORK/coord.out" \
    && fail "write-path drill produced an error: $(grep -m1 '^error' "$WORK/coord.out")"
  "$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
    --write m5:drillhugo,drillswiss --write m11:drillswiss,drillmim \
    --repeat 1 --dump "$WORK/sim_write.hmt" > /dev/null 2>&1
  cmp "$WORK/sim_write.hmt" "$WORK/write_cover.hmt" \
    || fail "post-repair cover differs from single-process write replay"
  grep -q "drillmim" "$WORK/write_cover.hmt" \
    || fail "replicated writes never reached the cover"
  echo "run_cluster: write path survived kill -9 of $VICTIM: repaired to seq 2, covers byte-identical"
fi

echo "quit" >&3
exec 3>&-
wait "$COORD" || fail "coordinator exited non-zero"
echo "run_cluster: PASS"
