#!/usr/bin/env bash
# Launches a multi-process hyperion cluster on loopback TCP, runs
# bio-catalog queries through the coordinator REPL, and proves the
# distributed cover is byte-identical to a single-process run over the
# same catalog.
#
#   tools/run_cluster.sh <path-to-hyperion_cli> [--kill-one] [--failover] [--write-path] [--rebalance]
#
# Startup handshake: storage nodes bind ephemeral ports (port 0 in the
# seed config) and publish them via --port-file; once all files exist
# the script rewrites a resolved config and only then starts the
# coordinator — no listen-before-connect race, no fixed ports to
# collide on in CI.  A storage node that dies before publishing its
# port fails the script immediately, by name, with its log tail — a
# missing port file never hangs the drill until timeout.
#
# --kill-one (replication=1, two storage nodes) SIGKILLs the storage
# node owning shard 0 mid-session and asserts the next query fails
# *loudly*, naming that node — an unreplicated cluster must never
# return a silently partial cover.
#
# --failover (replication=2, three storage nodes) is the chaos drill:
# SIGKILL the *primary* owner of shard 0 mid-workload and assert the
# cluster keeps answering — zero failed queries, covers byte-identical
# to the single-process reference, the failover invisible except in the
# logs.
#
# --write-path (replication=2, three storage nodes, write_quorum 1,
# per-node write logs) is the durability drill: replicate a curator
# write, kill -9 one replica, replicate a second write while it is
# down, restart it, wait for anti-entropy to repair it to the latest
# write sequence, and assert the final cluster cover is byte-identical
# to a single-process run that applied the same write sequence — with
# zero failed queries and zero failed writes along the way.
#
# --rebalance (replication=2, three storage nodes + one joiner) is the
# live-topology drill: seed curator writes, start a fourth storage node
# that is in NOBODY's boot config, `join` it through the coordinator
# REPL, poll the `epoch` verb until the new ring epoch commits, and
# assert the handoff actually shipped write-log rows
# (cluster.rebalance.rows_shipped > 0).  Then `decommission` the
# original primary of shard 0, wait for the next epoch to commit
# without it, kill -9 the retired process, and demand the final cover
# is byte-identical to a single-process run that applied the same
# writes — zero failed queries across both epoch transitions.
set -euo pipefail

CLI=${1:?usage: run_cluster.sh <path-to-hyperion_cli> [--kill-one] [--failover] [--write-path] [--rebalance]}
shift || true
KILL_ONE=0
FAILOVER=0
WRITE_PATH=0
REBALANCE=0
for arg in "$@"; do
  [[ "$arg" == "--kill-one" ]] && KILL_ONE=1
  [[ "$arg" == "--failover" ]] && FAILOVER=1
  [[ "$arg" == "--write-path" ]] && WRITE_PATH=1
  [[ "$arg" == "--rebalance" ]] && REBALANCE=1
done
if (( KILL_ONE + FAILOVER + WRITE_PATH + REBALANCE > 1 )); then
  echo "run_cluster: --kill-one, --failover, --write-path and --rebalance are mutually exclusive" >&2
  exit 2
fi

ENTITIES=${ENTITIES:-200}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hyperion_cluster.XXXXXX")
# Every spawned node pid lands here the moment it exists, so the EXIT
# trap can kill -9 the whole fleet on ANY early exit (a fail(), a
# set -e abort, a signal) — no orphaned storage processes outliving a
# broken drill, no port files leaking into the next CI step.
NODE_PIDS=()
cleanup() {
  if ((${#NODE_PIDS[@]} > 0)); then
    kill -9 "${NODE_PIDS[@]}" 2>/dev/null || true
  fi
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "run_cluster: FAIL: $*" >&2
  for log in "$WORK"/*.log "$WORK"/coord.out; do
    [[ -f "$log" ]] && { echo "--- $log ---" >&2; tail -20 "$log" >&2; }
  done
  exit 1
}

# Waits (up to $3 seconds, default 20) for $2 to appear in file $1.
# When $4 names a node and $5 its pid, a dead process fails fast with a
# named diagnostic instead of burning the whole budget.
await() {
  local file=$1 pattern=$2 budget=${3:-20} node=${4:-} pid=${5:-} i
  for ((i = 0; i < budget * 10; ++i)); do
    grep -q "$pattern" "$file" 2>/dev/null && return 0
    if [[ -n "$pid" ]] && ! kill -0 "$pid" 2>/dev/null; then
      fail "node '$node' (pid $pid) died before '$pattern' appeared in $file"
    fi
    sleep 0.1
  done
  fail "timed out waiting for '$pattern' in $file"
}

# State polling through the coordinator REPL: re-issues verb $1 (e.g.
# `versions`, `epoch`) every 200ms until $2 appears in coord.out, up to
# $3 seconds (default 30).  $4/$5 optionally name a node/pid whose death
# fails the poll fast.  Drills use this instead of fixed sleeps — the
# wait ends the moment the cluster reaches the state, not after a guess.
poll_repl() {
  local cmd=$1 pattern=$2 budget=${3:-30} node=${4:-} pid=${5:-} i
  for ((i = 0; i < budget * 5; ++i)); do
    echo "$cmd" >&3
    sleep 0.2
    grep -q "$pattern" "$WORK/coord.out" 2>/dev/null && return 0
    if [[ -n "$pid" ]] && ! kill -0 "$pid" 2>/dev/null; then
      fail "node '$node' (pid $pid) died while polling '$cmd' for '$pattern'"
    fi
    kill -0 "$COORD" 2>/dev/null \
      || fail "coordinator died while polling '$cmd' for '$pattern'"
  done
  fail "timed out polling '$cmd' for '$pattern'"
}

# --- 1. storage nodes on ephemeral ports --------------------------------
SHARDS=2
if [[ "$FAILOVER" == 1 || "$WRITE_PATH" == 1 ]]; then
  REPLICATION=2
  STORES=(store1 store2 store3)
elif [[ "$REBALANCE" == 1 ]]; then
  # More shards than the other drills so the joining node lands a
  # non-trivial slice of the ring to pull (with 64 vnodes the 4-node
  # ring gives store4 six of sixteen shards — checked via `cluster
  # plan`, deterministic).
  SHARDS=16
  REPLICATION=2
  STORES=(store1 store2 store3)
else
  REPLICATION=1
  STORES=(store1 store2)
fi

conf_body() {
  cat <<EOF
shards $SHARDS
replication $REPLICATION
heartbeat_ms 100
suspect_ms 500
down_ms 1500
fetch_timeout_ms 5000
replica_timeout_ms 400
fetch_attempts 2
fetch_backoff_ms 50
EOF
  if [[ "$WRITE_PATH" == 1 ]]; then
    # quorum 1: the write issued while one replica is SIGKILLed (but not
    # yet marked down) must commit off the surviving replica alone;
    # anti-entropy owes the dead one its catch-up.
    cat <<EOF
write_quorum 1
write_timeout_ms 5000
write_attempts 3
write_backoff_ms 50
repair_interval_ms 200
EOF
  fi
  if [[ "$REBALANCE" == 1 ]]; then
    # A tight repair/handoff timer keeps the epoch transitions short.
    echo "repair_interval_ms 200"
  fi
  echo "node coord coordinator 127.0.0.1 0"
}

# Storage nodes in a write-path drill persist applied writes, so a
# restarted replica resumes from its pre-crash write log.
store_flags() {
  local node=$1
  if [[ "$WRITE_PATH" == 1 ]]; then
    echo "--log-dir $WORK/$node.wal"
  fi
}

{
  conf_body
  for node in "${STORES[@]}"; do
    echo "node $node storage 127.0.0.1 0"
  done
} > "$WORK/seed.conf"

declare -A STORE_PID
for node in "${STORES[@]}"; do
  # shellcheck disable=SC2046
  "$CLI" node --config "$WORK/seed.conf" --id "$node" \
    --entities "$ENTITIES" --port-file "$WORK/$node.port" \
    $(store_flags "$node") \
    > "$WORK/$node.log" 2>&1 &
  STORE_PID[$node]=$!
  NODE_PIDS+=($!)
done
for node in "${STORES[@]}"; do
  await "$WORK/$node.port" "[0-9]" 20 "$node" "${STORE_PID[$node]}"
done

# --- 2. resolved config + placement -------------------------------------
{
  conf_body
  for node in "${STORES[@]}"; do
    echo "node $node storage 127.0.0.1 $(cat "$WORK/$node.port")"
  done
} > "$WORK/resolved.conf"

"$CLI" cluster plan --config "$WORK/resolved.conf"
# Column 4 of "shard 0 -> <primary> [replicas...]" is the primary owner.
VICTIM=$("$CLI" cluster plan --config "$WORK/resolved.conf" \
  | awk '$1 == "shard" && $2 == "0" { print $4 }')
[[ -n "$VICTIM" ]] || fail "could not determine the primary owner of shard 0"

# --- 3. coordinator REPL over a fifo ------------------------------------
mkfifo "$WORK/repl"
"$CLI" node --config "$WORK/resolved.conf" --id coord \
  --entities "$ENTITIES" --port-file "$WORK/coord.port" < "$WORK/repl" \
  > "$WORK/coord.out" 2> "$WORK/coord.log" &
COORD=$!
NODE_PIDS+=($!)
exec 3> "$WORK/repl"

echo "waitalive 10000" >&3
await "$WORK/coord.out" "all alive" 20 coord "$COORD"

echo "query Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "cover rows in" 20 coord "$COORD"
grep -q "^error" "$WORK/coord.out" && fail "healthy-cluster query errored"

echo "dump $WORK/cluster_cover.hmt Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "written to" 20 coord "$COORD"

# --- 4. conformance: cluster cover == single-process cover --------------
"$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
  --repeat 1 --dump "$WORK/sim_cover.hmt" > /dev/null 2>&1
cmp "$WORK/sim_cover.hmt" "$WORK/cluster_cover.hmt" \
  || fail "cluster cover differs from single-process cover"
echo "run_cluster: covers byte-identical ($(wc -c < "$WORK/sim_cover.hmt") bytes)"

# --- 5. optional: kill a storage node, demand a loud failure ------------
if [[ "$KILL_ONE" == 1 ]]; then
  echo "run_cluster: killing $VICTIM (owner of shard 0)"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Evict fetched tables and use a fresh path so neither cache layer can
  # answer without touching the dead node.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  echo "query Hugo,GDB,MIM" >&3
  await "$WORK/coord.out" "unreachable" 30 coord "$COORD"
  grep "storage node '$VICTIM' unreachable" "$WORK/coord.out" > /dev/null \
    || fail "failure did not name the dead node $VICTIM"
  echo "run_cluster: dead node loudly attributed: $(grep -o "storage node '$VICTIM' unreachable[^\"]*" "$WORK/coord.out" | head -1)"
fi

# --- 6. optional: replication=2 chaos drill — kill -9 the primary, ------
# ---    demand zero failed queries and byte-identical covers ------------
if [[ "$FAILOVER" == 1 ]]; then
  echo "run_cluster: kill -9 $VICTIM (primary of shard 0) mid-workload"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Drop the assembled-table cache and run only paths the service has
  # never answered (its cover cache is per-path), so every query below
  # has to go back on the wire and fail over from the dead primary to a
  # live replica.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  DRILL_PATHS=(
    Hugo,GDB,MIM
    Hugo,Locus,MIM
    Hugo,GDB,SwissProt,MIM
    Hugo,Locus,GDB,MIM
    Hugo,Locus,Unigene,SwissProt,MIM
  )
  for p in "${DRILL_PATHS[@]}"; do
    echo "query $p" >&3
  done
  # The REPL is sequential, so once the dump below has completed every
  # drill query above has answered too.
  echo "dump $WORK/failover_cover.hmt Hugo,Locus,GDB,SwissProt,MIM" >&3
  await "$WORK/coord.out" "failover_cover.hmt" 40 coord "$COORD"
  grep -q "^error" "$WORK/coord.out" \
    && fail "query failed during failover drill: $(grep -m1 '^error' "$WORK/coord.out")"
  ANSWERED=$(grep -c "cover rows in" "$WORK/coord.out")
  [[ "$ANSWERED" -ge 6 ]] \
    || fail "expected >= 6 answered queries, got $ANSWERED"
  "$CLI" query --entities "$ENTITIES" --path Hugo,Locus,GDB,SwissProt,MIM \
    --repeat 1 --dump "$WORK/sim_failover.hmt" > /dev/null 2>&1
  cmp "$WORK/sim_failover.hmt" "$WORK/failover_cover.hmt" \
    || fail "post-failover cover differs from single-process cover"
  echo "run_cluster: survived kill -9 of $VICTIM: $ANSWERED queries answered, 0 failed, covers byte-identical"
fi

# --- 7. optional: distributed write path + anti-entropy repair drill ----
if [[ "$WRITE_PATH" == 1 ]]; then
  # The query path Hugo,SwissProt,MIM composes m5 (Hugo->SwissProt) with
  # m11 (SwissProt->MIM); writing a linking row into each makes the new
  # pair visible in the cover, so the final byte-compare proves the
  # writes actually replicated.
  echo "run_cluster: write 1 (all replicas alive)"
  echo "write m5 drillhugo,drillswiss" >&3
  await "$WORK/coord.out" "write ok m5 seq 1" 20 coord "$COORD"

  echo "run_cluster: kill -9 $VICTIM (primary of shard 0), then write 2"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  echo "write m11 drillswiss,drillmim" >&3
  await "$WORK/coord.out" "write ok m11 seq 2" 30 coord "$COORD"

  # Restart the victim: same node id, fresh ephemeral port (its old one
  # may linger in TIME_WAIT), same write log.  Its config must carry the
  # coordinator's RESOLVED port (the seed says 0): the survivors only
  # know the victim's dead old address, so the victim has to dial out
  # first — peers then learn its new address from those heartbeats, and
  # anti-entropy sees its shard versions behind and feeds it the writes
  # it slept through.
  {
    conf_body
    for node in "${STORES[@]}"; do
      if [[ "$node" == "$VICTIM" ]]; then
        echo "node $node storage 127.0.0.1 0"
      else
        echo "node $node storage 127.0.0.1 $(cat "$WORK/$node.port")"
      fi
    done
  } | sed "s/node coord coordinator 127.0.0.1 0/node coord coordinator 127.0.0.1 $(cat "$WORK/coord.port")/" \
    > "$WORK/restart.conf"
  # shellcheck disable=SC2046
  "$CLI" node --config "$WORK/restart.conf" --id "$VICTIM" \
    --entities "$ENTITIES" --port-file "$WORK/$VICTIM.port2" \
    $(store_flags "$VICTIM") \
    > "$WORK/$VICTIM.restart.log" 2>&1 &
  STORE_PID[$VICTIM]=$!
  NODE_PIDS+=($!)
  await "$WORK/$VICTIM.port2" "[0-9]" 20 "$VICTIM" "${STORE_PID[$VICTIM]}"

  echo "run_cluster: waiting for anti-entropy to repair $VICTIM to seq 2"
  poll_repl versions "^$VICTIM shards [0-9]*/[0-9]* min v2" 30 \
    "$VICTIM" "${STORE_PID[$VICTIM]}"

  # Final conformance: the cluster cover after (write, crash, write,
  # repair) must equal a single-process run that just applied both
  # writes — byte-identical, zero failed queries, zero failed writes.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  echo "dump $WORK/write_cover.hmt Hugo,SwissProt,MIM" >&3
  await "$WORK/coord.out" "write_cover.hmt" 30 coord "$COORD"
  grep -q "^error" "$WORK/coord.out" \
    && fail "write-path drill produced an error: $(grep -m1 '^error' "$WORK/coord.out")"
  "$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
    --write m5:drillhugo,drillswiss --write m11:drillswiss,drillmim \
    --repeat 1 --dump "$WORK/sim_write.hmt" > /dev/null 2>&1
  cmp "$WORK/sim_write.hmt" "$WORK/write_cover.hmt" \
    || fail "post-repair cover differs from single-process write replay"
  grep -q "drillmim" "$WORK/write_cover.hmt" \
    || fail "replicated writes never reached the cover"
  echo "run_cluster: write path survived kill -9 of $VICTIM: repaired to seq 2, covers byte-identical"
fi

# --- 8. optional: live rebalance drill — join a node mid-workload, ------
# ---    hand off its shards, then decommission the original primary -----
if [[ "$REBALANCE" == 1 ]]; then
  # Seed curator writes first: the handoff ships write-log state, so
  # rows_shipped > 0 below proves the joiner pulled real rows, not just
  # an empty ack.
  echo "run_cluster: seeding writes before the join"
  echo "write m5 drillhugo,drillswiss" >&3
  await "$WORK/coord.out" "write ok m5 seq 1" 20 coord "$COORD"
  echo "write m11 drillswiss,drillmim" >&3
  await "$WORK/coord.out" "write ok m11 seq 2" 20 coord "$COORD"

  # Start store4 — absent from every running node's boot config.  Its
  # own config carries the fleet's RESOLVED addresses (it must dial out
  # first; nobody heartbeats an unknown node) plus itself on port 0.
  {
    conf_body
    for node in "${STORES[@]}"; do
      echo "node $node storage 127.0.0.1 $(cat "$WORK/$node.port")"
    done
    echo "node store4 storage 127.0.0.1 0"
  } | sed "s/node coord coordinator 127.0.0.1 0/node coord coordinator 127.0.0.1 $(cat "$WORK/coord.port")/" \
    > "$WORK/join.conf"
  "$CLI" node --config "$WORK/join.conf" --id store4 \
    --entities "$ENTITIES" --port-file "$WORK/store4.port" \
    > "$WORK/store4.log" 2>&1 &
  STORE_PID[store4]=$!
  NODE_PIDS+=($!)
  await "$WORK/store4.port" "[0-9]" 20 store4 "${STORE_PID[store4]}"

  echo "run_cluster: joining store4 mid-workload"
  echo "join store4 127.0.0.1:$(cat "$WORK/store4.port")" >&3
  await "$WORK/coord.out" "join of 'store4' started" 20 coord "$COORD"
  # Queries keep flowing while the handoff runs — reads stay on the old
  # owners until the epoch commits, so none of these may fail.
  echo "query Hugo,GDB,MIM" >&3
  poll_repl epoch "epoch 2 (stable): .*store4" 30 store4 "${STORE_PID[store4]}"
  poll_repl "counters cluster.rebalance" \
    "cluster.rebalance.rows_shipped [1-9]" 20
  echo "run_cluster: store4 joined at epoch 2; handoff shipped rows"

  echo "run_cluster: decommissioning $VICTIM"
  echo "decommission $VICTIM" >&3
  await "$WORK/coord.out" "decommission of '$VICTIM' started" 20 coord "$COORD"
  poll_repl epoch "epoch 3 (stable)" 30
  grep "epoch 3 (stable)" "$WORK/coord.out" | grep -q "$VICTIM" \
    && fail "decommissioned node $VICTIM still in the committed ring"
  # The retired node is out of the ring and roster; killing it must not
  # cost a single query.
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true

  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  for p in Hugo,GDB,MIM Hugo,Locus,MIM Hugo,GDB,SwissProt,MIM; do
    echo "query $p" >&3
  done
  echo "dump $WORK/rebalance_cover.hmt Hugo,SwissProt,MIM" >&3
  await "$WORK/coord.out" "rebalance_cover.hmt" 40 coord "$COORD"
  grep -q "^error" "$WORK/coord.out" \
    && fail "query failed during rebalance drill: $(grep -m1 '^error' "$WORK/coord.out")"
  "$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
    --write m5:drillhugo,drillswiss --write m11:drillswiss,drillmim \
    --repeat 1 --dump "$WORK/sim_rebalance.hmt" > /dev/null 2>&1
  cmp "$WORK/sim_rebalance.hmt" "$WORK/rebalance_cover.hmt" \
    || fail "post-rebalance cover differs from single-process write replay"
  grep -q "drillmim" "$WORK/rebalance_cover.hmt" \
    || fail "seeded writes missing from the post-rebalance cover"
  echo "run_cluster: rebalance drill survived join + decommission: covers byte-identical"
fi

echo "quit" >&3
exec 3>&-
wait "$COORD" || fail "coordinator exited non-zero"
echo "run_cluster: PASS"
