#!/usr/bin/env bash
# Launches a three-process hyperion cluster (one coordinator, two
# storage nodes) on loopback TCP, runs bio-catalog queries through the
# coordinator REPL, and proves the distributed cover is byte-identical
# to a single-process run over the same catalog.
#
#   tools/run_cluster.sh <path-to-hyperion_cli> [--kill-one]
#
# Startup handshake: storage nodes bind ephemeral ports (port 0 in the
# seed config) and publish them via --port-file; once both files exist
# the script rewrites a resolved config and only then starts the
# coordinator — no listen-before-connect race, no fixed ports to
# collide on in CI.
#
# --kill-one additionally SIGKILLs the storage node owning shard 0
# mid-session and asserts the next query fails *loudly*, naming that
# node — the cluster must never return a silently partial cover.
set -euo pipefail

CLI=${1:?usage: run_cluster.sh <path-to-hyperion_cli> [--kill-one]}
shift || true
KILL_ONE=0
for arg in "$@"; do
  [[ "$arg" == "--kill-one" ]] && KILL_ONE=1
done

ENTITIES=${ENTITIES:-200}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hyperion_cluster.XXXXXX")
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "run_cluster: FAIL: $*" >&2
  for log in "$WORK"/*.log "$WORK"/coord.out; do
    [[ -f "$log" ]] && { echo "--- $log ---" >&2; tail -20 "$log" >&2; }
  done
  exit 1
}

# Waits (up to $3 seconds, default 20) for $2 to appear in file $1.
await() {
  local file=$1 pattern=$2 budget=${3:-20} i
  for ((i = 0; i < budget * 10; ++i)); do
    grep -q "$pattern" "$file" 2>/dev/null && return 0
    sleep 0.1
  done
  fail "timed out waiting for '$pattern' in $file"
}

# --- 1. storage nodes on ephemeral ports --------------------------------
cat > "$WORK/seed.conf" <<EOF
shards 2
heartbeat_ms 100
suspect_ms 500
down_ms 1500
fetch_timeout_ms 2000
node coord coordinator 127.0.0.1 0
node store1 storage 127.0.0.1 0
node store2 storage 127.0.0.1 0
EOF

declare -A STORE_PID
for node in store1 store2; do
  "$CLI" node --config "$WORK/seed.conf" --id "$node" \
    --entities "$ENTITIES" --port-file "$WORK/$node.port" \
    > "$WORK/$node.log" 2>&1 &
  STORE_PID[$node]=$!
done
for node in store1 store2; do
  await "$WORK/$node.port" "[0-9]" 20
done

# --- 2. resolved config + placement -------------------------------------
cat > "$WORK/resolved.conf" <<EOF
shards 2
heartbeat_ms 100
suspect_ms 500
down_ms 1500
fetch_timeout_ms 2000
node coord coordinator 127.0.0.1 0
node store1 storage 127.0.0.1 $(cat "$WORK/store1.port")
node store2 storage 127.0.0.1 $(cat "$WORK/store2.port")
EOF

"$CLI" cluster plan --config "$WORK/resolved.conf"
VICTIM=$("$CLI" cluster plan --config "$WORK/resolved.conf" \
  | awk '$1 == "shard" && $2 == "0" { print $4 }')
[[ -n "$VICTIM" ]] || fail "could not determine the owner of shard 0"

# --- 3. coordinator REPL over a fifo ------------------------------------
mkfifo "$WORK/repl"
"$CLI" node --config "$WORK/resolved.conf" --id coord \
  --entities "$ENTITIES" < "$WORK/repl" \
  > "$WORK/coord.out" 2> "$WORK/coord.log" &
COORD=$!
exec 3> "$WORK/repl"

echo "waitalive 10000" >&3
await "$WORK/coord.out" "all alive" 20

echo "query Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "cover rows in" 20
grep -q "^error" "$WORK/coord.out" && fail "healthy-cluster query errored"

echo "dump $WORK/cluster_cover.hmt Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "written to" 20

# --- 4. conformance: cluster cover == single-process cover --------------
"$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
  --repeat 1 --dump "$WORK/sim_cover.hmt" > /dev/null 2>&1
cmp "$WORK/sim_cover.hmt" "$WORK/cluster_cover.hmt" \
  || fail "cluster cover differs from single-process cover"
echo "run_cluster: covers byte-identical ($(wc -c < "$WORK/sim_cover.hmt") bytes)"

# --- 5. optional: kill a storage node, demand a loud failure ------------
if [[ "$KILL_ONE" == 1 ]]; then
  echo "run_cluster: killing $VICTIM (owner of shard 0)"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Evict fetched tables and use a fresh path so neither cache layer can
  # answer without touching the dead node.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20
  echo "query Hugo,GDB,MIM" >&3
  await "$WORK/coord.out" "unreachable" 30
  grep "storage node '$VICTIM' unreachable" "$WORK/coord.out" > /dev/null \
    || fail "failure did not name the dead node $VICTIM"
  echo "run_cluster: dead node loudly attributed: $(grep -o "storage node '$VICTIM' unreachable[^\"]*" "$WORK/coord.out" | head -1)"
fi

echo "quit" >&3
exec 3>&-
wait "$COORD" || fail "coordinator exited non-zero"
echo "run_cluster: PASS"
