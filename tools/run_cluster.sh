#!/usr/bin/env bash
# Launches a multi-process hyperion cluster on loopback TCP, runs
# bio-catalog queries through the coordinator REPL, and proves the
# distributed cover is byte-identical to a single-process run over the
# same catalog.
#
#   tools/run_cluster.sh <path-to-hyperion_cli> [--kill-one] [--failover]
#
# Startup handshake: storage nodes bind ephemeral ports (port 0 in the
# seed config) and publish them via --port-file; once all files exist
# the script rewrites a resolved config and only then starts the
# coordinator — no listen-before-connect race, no fixed ports to
# collide on in CI.  A storage node that dies before publishing its
# port fails the script immediately, by name, with its log tail — a
# missing port file never hangs the drill until timeout.
#
# --kill-one (replication=1, two storage nodes) SIGKILLs the storage
# node owning shard 0 mid-session and asserts the next query fails
# *loudly*, naming that node — an unreplicated cluster must never
# return a silently partial cover.
#
# --failover (replication=2, three storage nodes) is the chaos drill:
# SIGKILL the *primary* owner of shard 0 mid-workload and assert the
# cluster keeps answering — zero failed queries, covers byte-identical
# to the single-process reference, the failover invisible except in the
# logs.
set -euo pipefail

CLI=${1:?usage: run_cluster.sh <path-to-hyperion_cli> [--kill-one] [--failover]}
shift || true
KILL_ONE=0
FAILOVER=0
for arg in "$@"; do
  [[ "$arg" == "--kill-one" ]] && KILL_ONE=1
  [[ "$arg" == "--failover" ]] && FAILOVER=1
done
if [[ "$KILL_ONE" == 1 && "$FAILOVER" == 1 ]]; then
  echo "run_cluster: --kill-one (replication=1) and --failover (replication=2) are mutually exclusive" >&2
  exit 2
fi

ENTITIES=${ENTITIES:-200}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hyperion_cluster.XXXXXX")
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "run_cluster: FAIL: $*" >&2
  for log in "$WORK"/*.log "$WORK"/coord.out; do
    [[ -f "$log" ]] && { echo "--- $log ---" >&2; tail -20 "$log" >&2; }
  done
  exit 1
}

# Waits (up to $3 seconds, default 20) for $2 to appear in file $1.
# When $4 names a node and $5 its pid, a dead process fails fast with a
# named diagnostic instead of burning the whole budget.
await() {
  local file=$1 pattern=$2 budget=${3:-20} node=${4:-} pid=${5:-} i
  for ((i = 0; i < budget * 10; ++i)); do
    grep -q "$pattern" "$file" 2>/dev/null && return 0
    if [[ -n "$pid" ]] && ! kill -0 "$pid" 2>/dev/null; then
      fail "node '$node' (pid $pid) died before '$pattern' appeared in $file"
    fi
    sleep 0.1
  done
  fail "timed out waiting for '$pattern' in $file"
}

# --- 1. storage nodes on ephemeral ports --------------------------------
if [[ "$FAILOVER" == 1 ]]; then
  REPLICATION=2
  STORES=(store1 store2 store3)
else
  REPLICATION=1
  STORES=(store1 store2)
fi

conf_body() {
  cat <<EOF
shards 2
replication $REPLICATION
heartbeat_ms 100
suspect_ms 500
down_ms 1500
fetch_timeout_ms 5000
replica_timeout_ms 400
fetch_attempts 2
fetch_backoff_ms 50
node coord coordinator 127.0.0.1 0
EOF
}

{
  conf_body
  for node in "${STORES[@]}"; do
    echo "node $node storage 127.0.0.1 0"
  done
} > "$WORK/seed.conf"

declare -A STORE_PID
for node in "${STORES[@]}"; do
  "$CLI" node --config "$WORK/seed.conf" --id "$node" \
    --entities "$ENTITIES" --port-file "$WORK/$node.port" \
    > "$WORK/$node.log" 2>&1 &
  STORE_PID[$node]=$!
done
for node in "${STORES[@]}"; do
  await "$WORK/$node.port" "[0-9]" 20 "$node" "${STORE_PID[$node]}"
done

# --- 2. resolved config + placement -------------------------------------
{
  conf_body
  for node in "${STORES[@]}"; do
    echo "node $node storage 127.0.0.1 $(cat "$WORK/$node.port")"
  done
} > "$WORK/resolved.conf"

"$CLI" cluster plan --config "$WORK/resolved.conf"
# Column 4 of "shard 0 -> <primary> [replicas...]" is the primary owner.
VICTIM=$("$CLI" cluster plan --config "$WORK/resolved.conf" \
  | awk '$1 == "shard" && $2 == "0" { print $4 }')
[[ -n "$VICTIM" ]] || fail "could not determine the primary owner of shard 0"

# --- 3. coordinator REPL over a fifo ------------------------------------
mkfifo "$WORK/repl"
"$CLI" node --config "$WORK/resolved.conf" --id coord \
  --entities "$ENTITIES" < "$WORK/repl" \
  > "$WORK/coord.out" 2> "$WORK/coord.log" &
COORD=$!
exec 3> "$WORK/repl"

echo "waitalive 10000" >&3
await "$WORK/coord.out" "all alive" 20 coord "$COORD"

echo "query Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "cover rows in" 20 coord "$COORD"
grep -q "^error" "$WORK/coord.out" && fail "healthy-cluster query errored"

echo "dump $WORK/cluster_cover.hmt Hugo,SwissProt,MIM" >&3
await "$WORK/coord.out" "written to" 20 coord "$COORD"

# --- 4. conformance: cluster cover == single-process cover --------------
"$CLI" query --entities "$ENTITIES" --path Hugo,SwissProt,MIM \
  --repeat 1 --dump "$WORK/sim_cover.hmt" > /dev/null 2>&1
cmp "$WORK/sim_cover.hmt" "$WORK/cluster_cover.hmt" \
  || fail "cluster cover differs from single-process cover"
echo "run_cluster: covers byte-identical ($(wc -c < "$WORK/sim_cover.hmt") bytes)"

# --- 5. optional: kill a storage node, demand a loud failure ------------
if [[ "$KILL_ONE" == 1 ]]; then
  echo "run_cluster: killing $VICTIM (owner of shard 0)"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Evict fetched tables and use a fresh path so neither cache layer can
  # answer without touching the dead node.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  echo "query Hugo,GDB,MIM" >&3
  await "$WORK/coord.out" "unreachable" 30 coord "$COORD"
  grep "storage node '$VICTIM' unreachable" "$WORK/coord.out" > /dev/null \
    || fail "failure did not name the dead node $VICTIM"
  echo "run_cluster: dead node loudly attributed: $(grep -o "storage node '$VICTIM' unreachable[^\"]*" "$WORK/coord.out" | head -1)"
fi

# --- 6. optional: replication=2 chaos drill — kill -9 the primary, ------
# ---    demand zero failed queries and byte-identical covers ------------
if [[ "$FAILOVER" == 1 ]]; then
  echo "run_cluster: kill -9 $VICTIM (primary of shard 0) mid-workload"
  kill -9 "${STORE_PID[$VICTIM]}"
  wait "${STORE_PID[$VICTIM]}" 2>/dev/null || true
  # Drop the assembled-table cache and run only paths the service has
  # never answered (its cover cache is per-path), so every query below
  # has to go back on the wire and fail over from the dead primary to a
  # live replica.
  echo "evict" >&3
  await "$WORK/coord.out" "cache dropped" 20 coord "$COORD"
  DRILL_PATHS=(
    Hugo,GDB,MIM
    Hugo,Locus,MIM
    Hugo,GDB,SwissProt,MIM
    Hugo,Locus,GDB,MIM
    Hugo,Locus,Unigene,SwissProt,MIM
  )
  for p in "${DRILL_PATHS[@]}"; do
    echo "query $p" >&3
  done
  # The REPL is sequential, so once the dump below has completed every
  # drill query above has answered too.
  echo "dump $WORK/failover_cover.hmt Hugo,Locus,GDB,SwissProt,MIM" >&3
  await "$WORK/coord.out" "failover_cover.hmt" 40 coord "$COORD"
  grep -q "^error" "$WORK/coord.out" \
    && fail "query failed during failover drill: $(grep -m1 '^error' "$WORK/coord.out")"
  ANSWERED=$(grep -c "cover rows in" "$WORK/coord.out")
  [[ "$ANSWERED" -ge 6 ]] \
    || fail "expected >= 6 answered queries, got $ANSWERED"
  "$CLI" query --entities "$ENTITIES" --path Hugo,Locus,GDB,SwissProt,MIM \
    --repeat 1 --dump "$WORK/sim_failover.hmt" > /dev/null 2>&1
  cmp "$WORK/sim_failover.hmt" "$WORK/failover_cover.hmt" \
    || fail "post-failover cover differs from single-process cover"
  echo "run_cluster: survived kill -9 of $VICTIM: $ANSWERED queries answered, 0 failed, covers byte-identical"
fi

echo "quit" >&3
exec 3>&-
wait "$COORD" || fail "coordinator exited non-zero"
echo "run_cluster: PASS"
