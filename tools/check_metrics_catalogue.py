#!/usr/bin/env python3
"""Cross-checks the metric/trace-kind catalogue in docs/METRICS.md
against the names actually registered in the source tree.

Both directions are enforced:

  * every dotted name registered in src/ or tools/ (GetCounter /
    GetGauge / GetHistogram / CountProto / TraceProto /
    RecordFaultEvent, including names routed through helper wrappers)
    must appear in a backtick span in docs/METRICS.md;
  * every dotted name documented in docs/METRICS.md must still exist in
    the code — documentation for a deleted instrument is drift too.

Names are the project's dotted lowercase identifiers
(``family.name`` or ``family.sub.name``); extraction is textual, so a
metric whose name is assembled at runtime must be added to EXEMPT with
a justification (none exist today).

Exit status: 0 = catalogue in sync, 1 = drift (details on stderr),
2 = usage/environment error.  CI runs this in the build-and-test job.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "METRICS.md"
CODE_DIRS = ("src", "tools")

# A dotted lowercase identifier: at least one '.', no uppercase — the
# shape every registry metric and trace kind in this tree uses.
NAME = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+")

# String literals in code that match NAME but are not instruments.
EXEMPT = {
    "artist_title.mp3",  # example filename in the workload generator
    "network.manifest",  # topology snapshot filename (p2p/network_io)
}


def code_names():
    names = {}
    literal = re.compile(r'"(' + NAME.pattern + r')"')
    for d in CODE_DIRS:
        for path in sorted((REPO / d).rglob("*")):
            if path.suffix not in (".cc", ".h"):
                continue
            for m in literal.finditer(path.read_text()):
                name = m.group(1)
                if name in EXEMPT:
                    continue
                names.setdefault(name, path.relative_to(REPO))
    return names


def doc_names():
    if not DOC.is_file():
        print(f"missing {DOC}", file=sys.stderr)
        sys.exit(2)
    names = set()
    # Only backtick spans whose *entire* content is a dotted name count
    # as catalogue entries; prose like `hyperion_cli stats [...]` or
    # slash-joined pairs are skipped.  Spans holding several names
    # separated by ' / ' (the doc's shorthand for sibling counters)
    # contribute each name.
    for span in re.findall(r"`([^`]+)`", DOC.read_text()):
        for part in span.split(" / "):
            if NAME.fullmatch(part):
                names.add(part)
    return names


def main():
    in_code = code_names()
    in_docs = doc_names()

    undocumented = sorted(set(in_code) - in_docs)
    stale = sorted(in_docs - set(in_code))

    ok = True
    if undocumented:
        ok = False
        print("registered in code but missing from docs/METRICS.md:",
              file=sys.stderr)
        for name in undocumented:
            print(f"  {name}  (first seen in {in_code[name]})",
                  file=sys.stderr)
    if stale:
        ok = False
        print("documented in docs/METRICS.md but absent from the code:",
              file=sys.stderr)
        for name in stale:
            print(f"  {name}", file=sys.stderr)

    if not ok:
        print(
            "\ncatalogue drift: update docs/METRICS.md (or EXEMPT in "
            "tools/check_metrics_catalogue.py for non-instrument "
            "literals).",
            file=sys.stderr,
        )
        return 1
    print(f"metrics catalogue in sync: {len(in_code)} names in code, "
          f"{len(in_docs)} documented.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
